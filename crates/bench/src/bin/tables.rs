//! Regenerates every table of the paper's evaluation.
//!
//! ```text
//! tables [table2|table3|table4|table5|table6|pareto|all] [--samples N] [--seed S] [--reps R]
//! ```
//!
//! Defaults: `all`, 8,000 samples (the paper's count), seed 2019.

use codesign::framework::{time_native, NativeMethod};
use codesign::kernels::KernelKind;
use codesign::report;
use decimal_bench::{atomic_config, rocket_timing, try_evaluate_cycles, try_guest_for, workload};

struct Options {
    what: String,
    samples: usize,
    seed: u64,
    reps: u32,
}

fn parse_args() -> Options {
    let mut options = Options {
        what: "all".to_string(),
        samples: decimal_bench::PAPER_SAMPLES,
        seed: 2019,
        reps: 20,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--samples" => {
                options.samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--samples needs a number"));
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--reps" => {
                options.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--reps needs a number"));
            }
            "table2" | "table3" | "table4" | "table5" | "table6" | "pareto" | "classes"
            | "seeds" | "all"
            => {
                options.what = arg;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    options
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: tables [table2|table3|table4|table5|table6|pareto|classes|seeds|all] \
         [--samples N] [--seed S] [--reps R]"
    );
    std::process::exit(2)
}

/// Reports a typed runtime failure (a kernel that fails to build, a result
/// mismatch against the oracle) and exits nonzero without a panic.
fn die(error: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {error}");
    std::process::exit(1);
}

fn main() {
    let options = parse_args();
    let what = options.what.as_str();
    if matches!(what, "table2" | "all") {
        println!("{}", report::table2());
    }
    if matches!(what, "table3" | "all") {
        println!("{}", report::table3());
    }
    if matches!(what, "table4" | "all") {
        table4(&options);
    }
    if matches!(what, "table5" | "all") {
        table5(&options);
    }
    if matches!(what, "table6" | "all") {
        table6(&options);
    }
    if matches!(what, "pareto" | "all") {
        pareto(&options);
    }
    if matches!(what, "classes" | "all") {
        classes(&options);
    }
    if matches!(what, "seeds" | "all") {
        seeds(&options);
    }
}

fn seeds(options: &Options) {
    // The paper's §V caveat: "due to cache random replacement policy, Rocket
    // chip is responsible for computing the number of cycles
    // nondeterministically. However ... a large numbers of input samples
    // with many repetition ... can show statistically meaningful results."
    // Sweep the replacement seed and report the spread of the averages.
    let count = options.samples.min(1_000);
    let vectors = workload(count, options.seed);
    eprintln!("[seeds] cache-seed sweep ({count} samples x 8 seeds)...");
    println!("Cache-replacement nondeterminism (paper Sec. V)");
    println!("{:<28} {:>10} {:>10} {:>10} {:>8}", "Configuration", "mean", "min", "max", "spread");
    for kind in [KernelKind::Software, KernelKind::Method1] {
        let averages: Vec<f64> = (0..8u64)
            .map(|s| {
                try_evaluate_cycles(kind, &vectors, rocket_timing(options.seed ^ (s * 0x9E37)))
                    .unwrap_or_else(|e| die(&e))
                    .avg_total_cycles
            })
            .collect();
        let mean = averages.iter().sum::<f64>() / averages.len() as f64;
        let min = averages.iter().cloned().fold(f64::MAX, f64::min);
        let max = averages.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<28} {:>10.1} {:>10.1} {:>10.1} {:>7.3}%",
            kind.name(),
            mean,
            min,
            max,
            100.0 * (max - min) / mean
        );
    }
    println!();
}

fn classes(options: &Options) {
    use codesign::framework::{build_guest_with, run_rocket_per_class};
    use testgen::DriverLayout;
    let count = options.samples.min(2_000);
    let vectors = workload(count, options.seed);
    let timing = rocket_timing(options.seed);
    eprintln!("[classes] per-class cycle attribution ({count} samples)...");
    let mut configs = Vec::new();
    for kind in [
        KernelKind::Software,
        KernelKind::Method1,
        KernelKind::Method1Dummy,
    ] {
        let guest = build_guest_with(
            kind,
            &vectors,
            DriverLayout {
                count: vectors.len(),
                repetitions: 1,
                per_sample_marks: true,
            },
        )
        .unwrap_or_else(|e| die(&format!("{kind}: failed to build guest: {e}")));
        let breakdown = run_rocket_per_class(&guest, &vectors, timing);
        configs.push((kind.name().to_string(), breakdown));
    }
    println!("{}", codesign::report::class_table(&configs));
}

fn table4(options: &Options) {
    let vectors = workload(options.samples, options.seed);
    let timing = rocket_timing(options.seed);
    eprintln!(
        "[table4] running {} samples on the cycle-accurate core...",
        vectors.len()
    );
    // The baseline row is computed up front, so the "software row present"
    // invariant holds by construction rather than by a runtime expect.
    let baseline = report::Table4Row::from_eval(
        KernelKind::Software,
        &try_evaluate_cycles(KernelKind::Software, &vectors, timing).unwrap_or_else(|e| die(&e)),
    );
    let mut rows = Vec::new();
    for kind in [
        KernelKind::Method1,
        KernelKind::Software,
        KernelKind::Method1Dummy,
    ] {
        if kind == KernelKind::Software {
            rows.push(baseline.clone());
            continue;
        }
        let eval = try_evaluate_cycles(kind, &vectors, timing).unwrap_or_else(|e| die(&e));
        rows.push(report::Table4Row::from_eval(kind, &eval));
    }
    println!("{}", report::table4(&rows, &baseline));
}

fn table5(options: &Options) {
    let vectors = workload(options.samples, options.seed);
    eprintln!(
        "[table5] timing native implementations ({} samples x {} reps)...",
        vectors.len(),
        options.reps
    );
    let software = time_native(NativeMethod::Software, &vectors, options.reps);
    let dummy = time_native(NativeMethod::Method1Dummy, &vectors, options.reps);
    let rows = vec![
        (
            "Method-1 using dummy function".to_string(),
            dummy.as_secs_f64(),
        ),
        ("Software (decNumber-style)".to_string(), software.as_secs_f64()),
    ];
    println!(
        "{}",
        report::time_table(
            "Table V: Evaluation by real (host) implementation",
            "Time (sec)",
            &rows,
            1,
        )
    );
}

fn table6(options: &Options) {
    // The atomic runs are slower per instruction than the native ones;
    // keep the sample count moderate by default scaling.
    let count = options.samples.min(2_000);
    let vectors = workload(count, options.seed);
    eprintln!("[table6] running {count} samples on the atomic CPU...");
    let config = atomic_config();
    let mut rows = Vec::new();
    for (label, kind) in [
        ("Method-1 using dummy function", KernelKind::Method1Dummy),
        ("Software (decNumber-style)", KernelKind::Software),
    ] {
        let guest = try_guest_for(kind, &vectors).unwrap_or_else(|e| die(&e));
        let eval = codesign::framework::run_atomic(&guest, config);
        rows.push((label.to_string(), eval.simulated_seconds));
    }
    println!(
        "{}",
        report::time_table(
            "Table VI: Evaluation using the Gem5-like AtomicSimpleCPU model",
            "Time (sec)",
            &rows,
            1,
        )
    );
}

fn pareto(options: &Options) {
    let count = options.samples.min(2_000);
    let vectors = workload(count, options.seed);
    let timing = rocket_timing(options.seed);
    eprintln!("[pareto] running the four methods ({count} samples)...");
    let costs = report::method_costs();
    let mut entries = Vec::new();
    for (kind, (name, gates)) in [
        KernelKind::Method1,
        KernelKind::Method2,
        KernelKind::Method3,
        KernelKind::Method4,
    ]
    .into_iter()
    .zip(costs)
    {
        let eval = try_evaluate_cycles(kind, &vectors, timing).unwrap_or_else(|e| die(&e));
        entries.push((name, gates, eval.avg_total_cycles));
    }
    println!("{}", report::pareto_table(&entries));
}
