//! Differential verification driver: lockstep-checks the three simulators
//! against each other, the kernels against the verification database, and
//! the accelerator against its software model.
//!
//! ```text
//! lockstep [conformance|fuzz|rocc|all] [--samples N] [--seed S]
//!          [--programs N] [--body N] [--commands N] [--no-rocc]
//! ```
//!
//! Defaults: `all`, 200 database samples (the paper's 8,000-sample
//! configuration scaled down for CI — pass `--samples 8000` for the full
//! database), seed 2019, 200 fuzz programs.
//!
//! Exits nonzero on any divergence, printing the full report (pc,
//! instruction, register/memory delta, retirement context) and the shrunk
//! reproducing program for fuzz failures.

use codesign::kernels::KernelKind;
use lockstep::fuzz::{run_fuzz, FuzzConfig};
use lockstep::rocc_diff::fuzz_rocc_commands;
use lockstep::{check_kernel_all_pairs, Pair};
use testgen::TestConfig;

struct Options {
    what: String,
    samples: usize,
    seed: u64,
    programs: u32,
    body_items: usize,
    commands: u32,
    with_rocc: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        what: "all".to_string(),
        samples: 200,
        seed: 2019,
        programs: 200,
        body_items: 40,
        commands: 10_000,
        with_rocc: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |flag: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
        };
        match arg.as_str() {
            "--samples" => options.samples = number("--samples") as usize,
            "--seed" => options.seed = number("--seed"),
            "--programs" => options.programs = number("--programs") as u32,
            "--body" => options.body_items = number("--body") as usize,
            "--commands" => options.commands = number("--commands") as u32,
            "--no-rocc" => options.with_rocc = false,
            "conformance" | "fuzz" | "rocc" | "all" => options.what = arg,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    options
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: lockstep [conformance|fuzz|rocc|all] [--samples N] [--seed S] \
         [--programs N] [--body N] [--commands N] [--no-rocc]"
    );
    std::process::exit(2);
}

/// Lockstep-checks every kernel over the verification database on every
/// simulator pair. Returns the number of divergences.
fn conformance(options: &Options) -> u32 {
    println!(
        "— conformance: {} samples, seed {}, {} kernels × {} pairs",
        options.samples,
        options.seed,
        KernelKind::ALL.len(),
        Pair::ALL.len()
    );
    let vectors = testgen::generate(&TestConfig {
        count: options.samples,
        seed: options.seed,
        ..TestConfig::default()
    });
    let mut divergences = 0;
    for kind in KernelKind::ALL {
        match check_kernel_all_pairs(kind, &vectors) {
            None => println!("  {kind:<16} all pairs agree"),
            Some((pair, outcome)) => {
                divergences += 1;
                println!("  {kind:<16} DIVERGED on {pair}:");
                if let Some(divergence) = outcome.divergence() {
                    println!("{divergence}");
                }
            }
        }
    }
    divergences
}

/// Runs the differential instruction fuzzer. Returns the failure count.
fn fuzz(options: &Options) -> u32 {
    println!(
        "— fuzz: {} programs × {} pairs, seed {}, {} body items, rocc {}",
        options.programs,
        Pair::ALL.len(),
        options.seed,
        options.body_items,
        if options.with_rocc { "on" } else { "off" }
    );
    let report = run_fuzz(&FuzzConfig {
        seed: options.seed,
        programs: options.programs,
        body_items: options.body_items,
        with_rocc: options.with_rocc,
        ..FuzzConfig::default()
    });
    println!(
        "  {} programs, {} pair runs, {} instructions compared in lockstep",
        report.programs_run, report.pairs_checked, report.instructions_checked
    );
    for failure in &report.failures {
        println!(
            "  program {} DIVERGED on {}:\n{}\n  minimal reproducer:\n{}",
            failure.program_index, failure.pair, failure.divergence, failure.shrunk_source
        );
    }
    report.failures.len() as u32
}

/// Runs the RoCC command-level differential. Returns the mismatch count.
fn rocc(options: &Options) -> u32 {
    println!(
        "— rocc: {} commands against the software model, seed {}",
        options.commands, options.seed
    );
    let report = fuzz_rocc_commands(options.seed, options.commands);
    println!("  {} commands compared", report.commands_run);
    for mismatch in &report.mismatches {
        println!(
            "  command {} ({}) MISMATCHED: {}",
            mismatch.index, mismatch.funct, mismatch.detail
        );
    }
    report.mismatches.len() as u32
}

fn main() {
    let options = parse_args();
    let mut failures = 0;
    if matches!(options.what.as_str(), "conformance" | "all") {
        failures += conformance(&options);
    }
    if matches!(options.what.as_str(), "fuzz" | "all") {
        failures += fuzz(&options);
    }
    if matches!(options.what.as_str(), "rocc" | "all") {
        failures += rocc(&options);
    }
    if failures > 0 {
        eprintln!("{failures} divergence(s) found");
        std::process::exit(1);
    }
    println!("all differential checks passed");
}
