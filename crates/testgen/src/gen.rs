//! Constrained-random operand generation and the verification database.

use decnum::{Context, DecNumber, Status};
use dpd::Sign;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The input case classes the paper's evaluation mixes (§V: "8,000 sample
/// inputs including overflow, underflow, normal, rounding, and clamping
/// cases").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CaseClass {
    /// Exact results, fully in range — no status flags.
    Normal,
    /// The coefficient product needs rounding to the precision (inexact).
    Rounding,
    /// The result exceeds the format's exponent range (±infinity/Nmax).
    Overflow,
    /// The result loses accuracy below the subnormal threshold.
    Underflow,
    /// The exponent must be clamped into range by padding the coefficient.
    Clamping,
    /// Special operands: NaNs and infinities.
    Special,
}

impl CaseClass {
    /// The name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CaseClass::Normal => "normal",
            CaseClass::Rounding => "rounding",
            CaseClass::Overflow => "overflow",
            CaseClass::Underflow => "underflow",
            CaseClass::Clamping => "clamping",
            CaseClass::Special => "special",
        }
    }
}

impl std::fmt::Display for CaseClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Format precision, as the paper's generator configures it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// decimal64 ("double"), the precision Table IV evaluates.
    #[default]
    Double,
    /// decimal128 ("quad").
    Quad,
}

/// The arithmetic operation under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Operation {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication — the co-design's target operation.
    #[default]
    Mul,
}

impl Operation {
    /// Applies the operation through the reference arithmetic.
    #[must_use]
    pub fn apply(self, x: &DecNumber, y: &DecNumber, ctx: &mut Context) -> DecNumber {
        match self {
            Operation::Add => x.add(y, ctx),
            Operation::Sub => x.sub(y, ctx),
            Operation::Mul => x.mul(y, ctx),
        }
    }
}

/// Generator configuration (paper §III's "mandatory and optional
/// configurations").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestConfig {
    /// Format precision.
    pub precision: Precision,
    /// Operation under test.
    pub operation: Operation,
    /// Total number of samples.
    pub count: usize,
    /// Class mix as `(class, weight)`; weights are relative.
    pub class_mix: Vec<(CaseClass, u32)>,
    /// Repetitions per calculation in generated test programs.
    pub repetitions: u32,
    /// RNG seed — the whole database is a pure function of the config.
    pub seed: u64,
}

impl Default for TestConfig {
    /// The paper's Table IV workload: 8,000 decimal64 multiplications over
    /// the five case classes.
    fn default() -> Self {
        TestConfig {
            precision: Precision::Double,
            operation: Operation::Mul,
            count: 8_000,
            class_mix: paper_mix(),
            repetitions: 1,
            seed: 2019, // SOCC'19
        }
    }
}

/// The paper's five-class mix, equally weighted.
#[must_use]
pub fn paper_mix() -> Vec<(CaseClass, u32)> {
    vec![
        (CaseClass::Normal, 1),
        (CaseClass::Rounding, 1),
        (CaseClass::Overflow, 1),
        (CaseClass::Underflow, 1),
        (CaseClass::Clamping, 1),
    ]
}

/// One operand pair with its class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestVector {
    /// First operand.
    pub x: DecNumber,
    /// Second operand.
    pub y: DecNumber,
    /// The class this vector provably exhibits.
    pub class: CaseClass,
}

impl TestVector {
    /// The operands as decimal64 interchange bits (for guest data tables).
    #[must_use]
    pub fn to_decimal64_bits(&self) -> (u64, u64) {
        let mut ctx = Context::decimal64();
        (
            self.x.to_decimal64(&mut ctx).to_bits(),
            self.y.to_decimal64(&mut ctx).to_bits(),
        )
    }
}

/// A golden result from the reference arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenResult {
    /// The reference result.
    pub result: DecNumber,
    /// decimal64 interchange bits of the result.
    pub result_bits: u64,
    /// The status flags the operation raised.
    pub status: Status,
}

fn context_for(precision: Precision) -> Context {
    match precision {
        Precision::Double => Context::decimal64(),
        Precision::Quad => Context::decimal128(),
    }
}

/// Generates `config.count` vectors, cycling through the class mix.
///
/// Every vector is validated by rejection sampling: operands are re-drawn
/// until the reference arithmetic confirms the requested class, so the
/// database's labels are trustworthy by construction.
///
/// # Panics
///
/// Panics if `class_mix` is empty or a class cannot be exhibited (e.g.
/// requesting overflow from an operation/precision where the proposal
/// distribution cannot reach it within 10,000 attempts — indicates a
/// configuration bug).
#[must_use]
pub fn generate(config: &TestConfig) -> Vec<TestVector> {
    assert!(!config.class_mix.is_empty(), "class mix must not be empty");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total_weight: u32 = config.class_mix.iter().map(|(_, w)| w).sum();
    assert!(total_weight > 0, "class weights must not all be zero");
    // Deterministic round-robin by weight keeps exact class proportions.
    let mut schedule: Vec<CaseClass> = Vec::with_capacity(total_weight as usize);
    for (class, weight) in &config.class_mix {
        schedule.extend(std::iter::repeat_n(*class, *weight as usize));
    }
    (0..config.count)
        .map(|i| {
            let class = schedule[i % schedule.len()];
            draw_vector(class, config, &mut rng)
        })
        .collect()
}

/// Pairs every generated vector with its golden result — the framework's
/// stand-in for the arithmetic-verification database of the paper's
/// reference \[18\].
#[must_use]
pub fn verification_database(config: &TestConfig) -> Vec<(TestVector, GoldenResult)> {
    generate(config)
        .into_iter()
        .map(|v| {
            let golden = golden(&v, config);
            (v, golden)
        })
        .collect()
}

/// Computes the golden result for one vector.
#[must_use]
pub fn golden(vector: &TestVector, config: &TestConfig) -> GoldenResult {
    let mut ctx = context_for(config.precision);
    let result = config.operation.apply(&vector.x, &vector.y, &mut ctx);
    let result_bits = {
        let mut enc = Context::decimal64();
        enc.rounding = ctx.rounding;
        result.to_decimal64(&mut enc).to_bits()
    };
    GoldenResult {
        result,
        result_bits,
        status: ctx.status(),
    }
}

fn draw_vector(class: CaseClass, config: &TestConfig, rng: &mut StdRng) -> TestVector {
    for _ in 0..10_000 {
        let (x, y) = propose(class, config, rng);
        if exhibits(class, &x, &y, config) {
            return TestVector { x, y, class };
        }
    }
    panic!("could not generate a {class} case for {:?}", config.operation);
}

/// Draws a coefficient with exactly `digits` significant digits as an
/// LSD-first digit vector (supports the full 34-digit quad width).
fn coefficient(rng: &mut StdRng, digits: u32) -> Vec<u8> {
    let mut v: Vec<u8> = (0..digits).map(|_| rng.gen_range(0..=9u8)).collect();
    if let Some(msd) = v.last_mut() {
        *msd = rng.gen_range(1..=9);
    }
    v
}

fn number(rng: &mut StdRng, digits: u32, exp_range: std::ops::RangeInclusive<i32>) -> DecNumber {
    let digits = coefficient(rng, digits);
    let sign = if rng.gen() { Sign::Negative } else { Sign::Positive };
    let exponent = rng.gen_range(exp_range);
    DecNumber::from_parts(sign, &digits, exponent)
}

/// Per-format exponent landmarks.
struct Bounds {
    emax: i32,
    etop: i32,
    etiny: i32,
}

fn bounds(precision: Precision) -> Bounds {
    match precision {
        Precision::Double => Bounds {
            emax: 384,
            etop: 369,
            etiny: -398,
        },
        Precision::Quad => Bounds {
            emax: 6144,
            etop: 6111,
            etiny: -6176,
        },
    }
}

fn propose(class: CaseClass, config: &TestConfig, rng: &mut StdRng) -> (DecNumber, DecNumber) {
    let p = match config.precision {
        Precision::Double => 16u32,
        Precision::Quad => 34,
    };
    let b = bounds(config.precision);
    match (class, config.operation) {
        (CaseClass::Normal, Operation::Mul) => {
            let da = rng.gen_range(1..=(p / 2));
            let db = rng.gen_range(1..=(p - da).min(p / 2));
            (number(rng, da, -20..=20), number(rng, db, -20..=20))
        }
        (CaseClass::Normal, _) => {
            let da = rng.gen_range(1..=(p - 2));
            let db = rng.gen_range(1..=(p - 2));
            let e = rng.gen_range(-10..=10);
            (number(rng, da, e..=e), number(rng, db, e..=e))
        }
        (CaseClass::Rounding, Operation::Mul) => {
            let da = rng.gen_range((p / 2 + 1)..=p);
            let db = rng.gen_range((p / 2 + 1)..=p);
            (number(rng, da, -20..=20), number(rng, db, -20..=20))
        }
        (CaseClass::Rounding, _) => {
            // Far-apart exponents force sticky rounding in add/sub.
            let db = rng.gen_range(1..=4);
            let far = -(p as i32);
            (
                number(rng, p, 0..=4),
                number(rng, db, (far - 8)..=(far - 4)),
            )
        }
        (CaseClass::Overflow, Operation::Mul) => {
            let da = rng.gen_range(p / 2..=p);
            let db = rng.gen_range(p / 2..=p);
            let lo = b.emax / 2 - 10;
            (number(rng, da, lo..=b.etop), number(rng, db, lo..=b.etop))
        }
        (CaseClass::Overflow, _) => {
            // Nmax + Nmax-ish.
            (
                number(rng, p, (b.etop - 9)..=b.etop),
                number(rng, p, (b.etop - 9)..=b.etop),
            )
        }
        (CaseClass::Underflow, Operation::Mul) => {
            let da = rng.gen_range(p / 2..=p);
            let db = rng.gen_range(p / 2..=p);
            let hi = -b.emax / 2 + 10;
            (
                number(rng, da, b.etiny..=hi),
                number(rng, db, b.etiny..=hi),
            )
        }
        (CaseClass::Underflow, _) => {
            // Addition cannot underflow within representable operands (any
            // inexact sum's adjusted exponent sits above emin), so the class
            // means "subnormal result" for add/sub; `exhibits` accepts both.
            let da = rng.gen_range(1..=(p / 4));
            let db = rng.gen_range(1..=(p / 4));
            (
                number(rng, da, b.etiny..=(b.etiny + 3)),
                number(rng, db, b.etiny..=(b.etiny + 3)),
            )
        }
        (CaseClass::Clamping, Operation::Mul) => {
            // Small coefficients, large positive exponents: in range but
            // above Etop, so the result exponent is folded into padding.
            let target = rng.gen_range((b.etop + 3)..=(b.emax - 4));
            let qa = rng.gen_range(100..=(b.etop - 100));
            let qb = target - qa;
            let da = rng.gen_range(1..=3);
            let db = rng.gen_range(1..=3);
            (number(rng, da, qa..=qa), number(rng, db, qb..=qb))
        }
        (CaseClass::Clamping, _) => {
            let da = rng.gen_range(1..=2);
            let db = rng.gen_range(1..=2);
            let range = (b.etop + 1)..=(b.etop + 6);
            (number(rng, da, range.clone()), number(rng, db, range))
        }
        (CaseClass::Special, _) => {
            let pick = |rng: &mut StdRng| match rng.gen_range(0..4u8) {
                0 => DecNumber::nan(),
                1 => DecNumber::infinity(Sign::Positive),
                2 => DecNumber::infinity(Sign::Negative),
                _ => DecNumber::from_u64(rng.gen_range(0..100)),
            };
            let x = pick(rng);
            let mut y = pick(rng);
            if x.is_finite() && y.is_finite() {
                y = DecNumber::nan();
            }
            (x, y)
        }
    }
}

fn exhibits(class: CaseClass, x: &DecNumber, y: &DecNumber, config: &TestConfig) -> bool {
    let mut ctx = context_for(config.precision);
    let result = config.operation.apply(x, y, &mut ctx);
    let s = ctx.status();
    match class {
        CaseClass::Normal => s.is_clear() && result.is_finite() && !result.is_zero(),
        CaseClass::Rounding => {
            s.contains(Status::INEXACT)
                && !s.intersects(
                    Status::OVERFLOW
                        .union(Status::UNDERFLOW)
                        .union(Status::SUBNORMAL),
                )
        }
        CaseClass::Overflow => s.contains(Status::OVERFLOW),
        CaseClass::Underflow => {
            if config.operation == Operation::Mul {
                s.contains(Status::UNDERFLOW)
            } else {
                // Add/sub: a subnormal (possibly exact) result is the
                // closest reachable behaviour; see `propose`.
                s.contains(Status::SUBNORMAL) && !s.contains(Status::OVERFLOW)
            }
        }
        CaseClass::Clamping => {
            s.contains(Status::CLAMPED) && !s.intersects(Status::OVERFLOW.union(Status::UNDERFLOW))
        }
        CaseClass::Special => result.is_nan() || result.is_infinite(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(count: usize) -> TestConfig {
        TestConfig {
            count,
            ..TestConfig::default()
        }
    }

    #[test]
    fn generates_requested_count_and_classes() {
        let config = small(50);
        let vectors = generate(&config);
        assert_eq!(vectors.len(), 50);
        // Round-robin over 5 classes: 10 of each.
        for class in [
            CaseClass::Normal,
            CaseClass::Rounding,
            CaseClass::Overflow,
            CaseClass::Underflow,
            CaseClass::Clamping,
        ] {
            assert_eq!(
                vectors.iter().filter(|v| v.class == class).count(),
                10,
                "{class}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small(20));
        let b = generate(&small(20));
        assert_eq!(a, b);
        let c = generate(&TestConfig {
            seed: 7,
            ..small(20)
        });
        assert_ne!(a, c);
    }

    #[test]
    fn every_vector_exhibits_its_class() {
        let config = small(100);
        for (vector, golden) in verification_database(&config) {
            match vector.class {
                CaseClass::Normal => assert!(golden.status.is_clear(), "{vector:?}"),
                CaseClass::Rounding => {
                    assert!(golden.status.contains(Status::INEXACT), "{vector:?}")
                }
                CaseClass::Overflow => {
                    assert!(golden.status.contains(Status::OVERFLOW), "{vector:?}")
                }
                CaseClass::Underflow => {
                    assert!(golden.status.contains(Status::UNDERFLOW), "{vector:?}")
                }
                CaseClass::Clamping => {
                    assert!(golden.status.contains(Status::CLAMPED), "{vector:?}")
                }
                CaseClass::Special => {}
            }
        }
    }

    #[test]
    fn add_operation_classes_work_too() {
        let config = TestConfig {
            operation: Operation::Add,
            count: 25,
            ..TestConfig::default()
        };
        let vectors = generate(&config);
        assert_eq!(vectors.len(), 25);
    }

    #[test]
    fn quad_precision_generates_all_five_classes() {
        let config = TestConfig {
            precision: Precision::Quad,
            count: 25,
            ..TestConfig::default()
        };
        for (vector, golden) in verification_database(&config) {
            match vector.class {
                CaseClass::Overflow => {
                    assert!(golden.status.contains(Status::OVERFLOW), "{vector:?}")
                }
                CaseClass::Underflow => {
                    assert!(golden.status.contains(Status::UNDERFLOW), "{vector:?}")
                }
                CaseClass::Clamping => {
                    assert!(golden.status.contains(Status::CLAMPED), "{vector:?}")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn special_class_produces_specials() {
        let config = TestConfig {
            class_mix: vec![(CaseClass::Special, 1)],
            count: 10,
            ..TestConfig::default()
        };
        for (_, golden) in verification_database(&config) {
            assert!(golden.result.is_nan() || golden.result.is_infinite());
        }
    }

    #[test]
    fn decimal64_bits_roundtrip() {
        let config = small(10);
        for v in generate(&config) {
            let (xb, yb) = v.to_decimal64_bits();
            let x = DecNumber::from_decimal64(dpd::Decimal64::from_bits(xb));
            // The encoding may be clamped relative to the abstract number,
            // but it must still be finite/sane for finite inputs.
            if v.x.is_finite() {
                assert!(x.is_finite() || v.class == CaseClass::Overflow);
            }
            let _ = yb;
        }
    }

    #[test]
    #[should_panic(expected = "class mix")]
    fn empty_mix_rejected() {
        let _ = generate(&TestConfig {
            class_mix: vec![],
            ..small(1)
        });
    }
}
