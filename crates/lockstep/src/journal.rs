//! Append-only write-ahead journal for resumable campaigns.
//!
//! A journaled run appends one line per completed case, flushed before the
//! next case starts, so a `kill -9` at any point loses at most the case in
//! flight. On resume the reader replays every intact line and the run
//! continues from the first case the journal does not cover; because every
//! campaign is deterministic in its seed, the resumed run's final report is
//! byte-identical to an uninterrupted one.
//!
//! # Format
//!
//! The journal is a line-oriented text file. Every line carries its own
//! FNV-1a checksum so a torn tail write (the common crash artifact) is
//! detected and discarded rather than misparsed:
//!
//! ```text
//! journal faults v1 4f1c0e... #a1b2c3d4e5f60718   <- header: kind + config fingerprint
//! case 0 3 reg:7:101 masked                       <- one line per completed case
//! case 1 5 wedge quarantined:3:wedged:livelock
//! ckpt 2                                          <- periodic checkpoint marker
//! ```
//!
//! The header binds the journal to a *fingerprint* of the campaign
//! configuration (seed, case count, budgets, program identity); resuming
//! with a different configuration is a typed error, not silent garbage.
//! Case payloads are opaque to this module — campaign and fuzz code define
//! their own fields, with the rule that fields are space-separated and
//! space-free.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use riscv_sim::snapshot::fnv1a64;

/// Journal format version (bumped on any layout change).
pub const JOURNAL_VERSION: u32 = 1;

/// Where and how a workload journals its progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSpec {
    /// Journal file path.
    pub path: PathBuf,
    /// Resume from an existing journal at `path` (a missing file is a
    /// fresh start) instead of truncating it.
    pub resume: bool,
    /// Append a checkpoint marker and report progress every this many
    /// completed cases (0 disables periodic checkpoints).
    pub checkpoint_every: usize,
}

/// A progress snapshot reported by journaled runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Cases finished so far (journal replays included).
    pub done: usize,
    /// Total cases planned.
    pub total: usize,
    /// Cases quarantined so far.
    pub quarantined: usize,
}

/// Everything that can go wrong opening, reading, or writing a journal.
#[derive(Debug)]
pub enum JournalError {
    /// The file exists but does not start with a valid journal header.
    NotAJournal(PathBuf),
    /// The header's kind does not match the workload trying to resume.
    KindMismatch {
        /// Kind recorded in the journal.
        found: String,
        /// Kind the workload expected.
        expected: String,
    },
    /// The header's format version is not supported by this build.
    Version {
        /// Version recorded in the journal.
        found: u32,
    },
    /// The header's configuration fingerprint does not match the workload.
    Fingerprint {
        /// Fingerprint recorded in the journal.
        found: u64,
        /// Fingerprint of the resuming configuration.
        expected: u64,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::NotAJournal(path) => {
                write!(f, "{} is not a campaign journal", path.display())
            }
            JournalError::KindMismatch { found, expected } => write!(
                f,
                "journal was written by a '{found}' run, cannot resume a '{expected}' run from it"
            ),
            JournalError::Version { found } => write!(
                f,
                "journal format version {found} is not supported (this build writes v{JOURNAL_VERSION})"
            ),
            JournalError::Fingerprint { found, expected } => write!(
                f,
                "journal fingerprint {found:#018x} does not match this configuration \
                 ({expected:#018x}); the seed, case count, budgets, or program differ"
            ),
            JournalError::Io(e) => write!(f, "journal I/O failure: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Appends the per-line checksum: `payload #<fnv64 hex>`.
fn sealed_line(payload: &str) -> String {
    format!("{payload} #{:016x}\n", fnv1a64(payload.as_bytes()))
}

/// Strips and verifies the per-line checksum; `None` for torn or corrupt
/// lines.
fn unseal_line(line: &str) -> Option<&str> {
    let (payload, checksum) = line.rsplit_once(" #")?;
    let stored = u64::from_str_radix(checksum, 16).ok()?;
    (stored == fnv1a64(payload.as_bytes())).then_some(payload)
}

fn header_payload(kind: &str, fingerprint: u64) -> String {
    format!("journal {kind} v{JOURNAL_VERSION} {fingerprint:016x}")
}

/// The intact contents of a journal file, as recovered by
/// [`Journal::recover`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Recovered {
    /// The payload of every intact `case` line, in file order, with the
    /// `case ` prefix stripped.
    pub cases: Vec<String>,
    /// Byte length of the intact prefix — everything after it is a torn
    /// or corrupt tail and is truncated away before appending resumes.
    pub valid_len: u64,
}

/// An append-only, checksummed, line-oriented write-ahead journal.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// and writes the header binding it to `kind` and `fingerprint`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path, kind: &str, fingerprint: u64) -> Result<Journal, JournalError> {
        let file = File::create(path)?;
        let mut journal = Journal {
            writer: BufWriter::new(file),
        };
        journal.append_raw(&header_payload(kind, fingerprint))?;
        Ok(journal)
    }

    /// Reads the intact prefix of the journal at `path`, validating the
    /// header against `kind` and `fingerprint`. A missing file is an empty
    /// recovery (fresh start), not an error. Reading stops at the first
    /// line whose checksum fails — everything before it is trusted,
    /// everything after it is a crash artifact.
    ///
    /// # Errors
    ///
    /// Typed errors for a non-journal file or a header that does not match
    /// this workload; I/O errors propagate.
    pub fn recover(
        path: &Path,
        kind: &str,
        fingerprint: u64,
    ) -> Result<Recovered, JournalError> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut file) => {
                file.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Recovered::default())
            }
            Err(e) => return Err(e.into()),
        }
        // A zero-byte file is the crash artifact of a create that died
        // before the header flush — a fresh start, like a missing file.
        if text.is_empty() {
            return Ok(Recovered::default());
        }
        let mut cases = Vec::new();
        let mut valid_len = 0u64;
        let mut saw_header = false;
        for line in text.split_inclusive('\n') {
            let Some(payload) = line.strip_suffix('\n').and_then(unseal_line) else {
                break; // torn or corrupt tail
            };
            if !saw_header {
                validate_header(payload, path, kind, fingerprint)?;
                saw_header = true;
            } else if let Some(case) = payload.strip_prefix("case ") {
                cases.push(case.to_string());
            }
            // `ckpt` lines carry no state beyond durability pacing.
            valid_len += line.len() as u64;
        }
        if !saw_header {
            return Err(JournalError::NotAJournal(path.to_path_buf()));
        }
        Ok(Recovered { cases, valid_len })
    }

    /// The resume entry point: recovers the intact prefix of the journal
    /// at `path` and reopens it for appending. A missing or empty file
    /// degrades to a fresh [`Journal::create`] (header included), so
    /// `--resume` works whether or not the previous run got far enough to
    /// write anything.
    ///
    /// # Errors
    ///
    /// Same typed errors as [`Journal::recover`] and [`Journal::reopen`].
    pub fn resume(
        path: &Path,
        kind: &str,
        fingerprint: u64,
    ) -> Result<(Recovered, Journal), JournalError> {
        let recovered = Journal::recover(path, kind, fingerprint)?;
        let journal = if recovered.valid_len == 0 {
            Journal::create(path, kind, fingerprint)?
        } else {
            Journal::reopen(path, recovered.valid_len)?
        };
        Ok((recovered, journal))
    }

    /// Reopens the journal at `path` for appending after a
    /// [`Journal::recover`], truncating the corrupt tail (if any) at
    /// `valid_len` first.
    ///
    /// # Errors
    ///
    /// Propagates open/truncate failures.
    pub fn reopen(path: &Path, valid_len: u64) -> Result<Journal, JournalError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        // Defensive: append mode positions at the (now truncated) end.
        file.flush()?;
        Ok(Journal {
            writer: BufWriter::new(file),
        })
    }

    fn append_raw(&mut self, payload: &str) -> Result<(), JournalError> {
        debug_assert!(!payload.contains('\n'), "journal payloads are single lines");
        self.writer.write_all(sealed_line(payload).as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Appends one completed-case record. `fields` must be space-free;
    /// they are joined with single spaces after the `case` tag.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append_case(&mut self, fields: &[&str]) -> Result<(), JournalError> {
        self.append_raw(&format!("case {}", fields.join(" ")))
    }

    /// Appends a checkpoint marker recording `done` completed cases.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn checkpoint(&mut self, done: usize) -> Result<(), JournalError> {
        self.append_raw(&format!("ckpt {done}"))
    }
}

fn validate_header(
    payload: &str,
    path: &Path,
    kind: &str,
    fingerprint: u64,
) -> Result<(), JournalError> {
    let mut parts = payload.split(' ');
    if parts.next() != Some("journal") {
        return Err(JournalError::NotAJournal(path.to_path_buf()));
    }
    let found_kind = parts.next().unwrap_or_default();
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| JournalError::NotAJournal(path.to_path_buf()))?;
    if version != JOURNAL_VERSION {
        return Err(JournalError::Version { found: version });
    }
    if found_kind != kind {
        return Err(JournalError::KindMismatch {
            found: found_kind.to_string(),
            expected: kind.to_string(),
        });
    }
    let found_fingerprint = parts
        .next()
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| JournalError::NotAJournal(path.to_path_buf()))?;
    if found_fingerprint != fingerprint {
        return Err(JournalError::Fingerprint {
            found: found_fingerprint,
            expected: fingerprint,
        });
    }
    Ok(())
}

/// A rolling FNV-1a fingerprint builder for binding journals to their
/// configuration: feed it every parameter that changes the case stream.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The FNV-1a basis, tagged with a domain string.
    #[must_use]
    pub fn new(domain: &str) -> Self {
        Fingerprint(fnv1a64(domain.as_bytes()))
    }

    /// Mixes in one `u64` parameter.
    pub fn u64(&mut self, value: u64) -> &mut Self {
        let mut bytes = self.0.to_le_bytes().to_vec();
        bytes.extend_from_slice(&value.to_le_bytes());
        self.0 = fnv1a64(&bytes);
        self
    }

    /// Mixes in one byte-string parameter (length-delimited, so `("a",
    /// "bc")` and `("ab", "c")` fingerprint differently).
    pub fn bytes(&mut self, value: &[u8]) -> &mut Self {
        self.u64(value.len() as u64);
        let mut bytes = self.0.to_le_bytes().to_vec();
        bytes.extend_from_slice(value);
        self.0 = fnv1a64(&bytes);
        self
    }

    /// The fingerprint value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("lockstep-journal-{tag}-{}", std::process::id()));
        path
    }

    #[test]
    fn write_then_recover_round_trips() {
        let path = temp_path("roundtrip");
        let mut journal = Journal::create(&path, "faults", 0xABCD).unwrap();
        journal.append_case(&["0", "reg:7:3", "masked"]).unwrap();
        journal.append_case(&["1", "wedge", "caught-by-watchdog"]).unwrap();
        journal.checkpoint(2).unwrap();
        drop(journal);
        let recovered = Journal::recover(&path, "faults", 0xABCD).unwrap();
        assert_eq!(
            recovered.cases,
            vec!["0 reg:7:3 masked", "1 wedge caught-by-watchdog"]
        );
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(recovered.valid_len, on_disk);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let path = temp_path("torn");
        let mut journal = Journal::create(&path, "faults", 1).unwrap();
        journal.append_case(&["0", "ok"]).unwrap();
        drop(journal);
        let intact = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half a line, no newline, no valid
        // checksum.
        use std::io::Write as _;
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"case 1 half-writ").unwrap();
        drop(file);
        let recovered = Journal::recover(&path, "faults", 1).unwrap();
        assert_eq!(recovered.cases, vec!["0 ok"]);
        assert_eq!(recovered.valid_len, intact);
        let mut journal = Journal::reopen(&path, recovered.valid_len).unwrap();
        journal.append_case(&["1", "retried"]).unwrap();
        drop(journal);
        let recovered = Journal::recover(&path, "faults", 1).unwrap();
        assert_eq!(recovered.cases, vec!["0 ok", "1 retried"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        let path = temp_path("missing");
        let recovered = Journal::recover(&path, "faults", 7).unwrap();
        assert_eq!(recovered, Recovered::default());
    }

    #[test]
    fn resume_on_a_missing_or_empty_file_creates_a_fresh_journal() {
        for (tag, prepare) in [
            ("resume-missing", false),
            ("resume-empty", true),
        ] {
            let path = temp_path(tag);
            if prepare {
                std::fs::write(&path, b"").unwrap();
            }
            let (recovered, mut journal) = Journal::resume(&path, "faults", 9).unwrap();
            assert_eq!(recovered, Recovered::default());
            journal.append_case(&["0", "ok"]).unwrap();
            drop(journal);
            // The fresh-start journal carries a header and round-trips.
            let recovered = Journal::recover(&path, "faults", 9).unwrap();
            assert_eq!(recovered.cases, vec!["0 ok"]);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn header_mismatches_are_typed_errors() {
        let path = temp_path("mismatch");
        drop(Journal::create(&path, "faults", 0x1111).unwrap());
        assert!(matches!(
            Journal::recover(&path, "fuzz", 0x1111),
            Err(JournalError::KindMismatch { .. })
        ));
        assert!(matches!(
            Journal::recover(&path, "faults", 0x2222),
            Err(JournalError::Fingerprint { .. })
        ));
        std::fs::write(&path, "not a journal at all\n").unwrap();
        assert!(matches!(
            Journal::recover(&path, "faults", 0x1111),
            Err(JournalError::NotAJournal(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_separates_parameters() {
        let a = Fingerprint::new("faults").u64(1).bytes(b"ab").finish();
        let b = Fingerprint::new("faults").u64(1).bytes(b"ac").finish();
        let c = Fingerprint::new("fuzz").u64(1).bytes(b"ab").finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
