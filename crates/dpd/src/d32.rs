//! The decimal32 interchange format (storage-only in most implementations).

use bcd::Bcd64;

use crate::declet::{decode_declet_bcd, encode_declet_bcd};
use crate::{Class, DpdError, Sign};

/// An IEEE 754-2008 decimal32 value in its DPD interchange encoding.
///
/// Layout: 1 sign bit, 5-bit combination, 6-bit exponent continuation,
/// 20-bit coefficient continuation (two declets). Precision is seven digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal32(u32);

/// The sign, coefficient and exponent of a finite decimal32.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parts32 {
    /// The sign.
    pub sign: Sign,
    /// The coefficient, at most seven digits.
    pub coefficient: Bcd64,
    /// The exponent of the least significant coefficient digit (`q`).
    pub exponent: i32,
}

impl Decimal32 {
    /// Precision in decimal digits.
    pub const PRECISION: u32 = 7;
    /// Exponent bias applied to `q`.
    pub const BIAS: i32 = 101;
    /// Smallest exponent `q`.
    pub const EMIN_Q: i32 = -101;
    /// Largest exponent `q`.
    pub const EMAX_Q: i32 = 90;

    /// Positive zero.
    pub const ZERO: Decimal32 = Decimal32(0x2250_0000);
    /// Positive infinity.
    pub const INFINITY: Decimal32 = Decimal32(0x7800_0000);
    /// A quiet NaN.
    pub const NAN: Decimal32 = Decimal32(0x7C00_0000);

    const COMBO_SHIFT: u32 = 26;
    const EXP_CONT_SHIFT: u32 = 20;
    const EXP_CONT_BITS: u32 = 6;

    /// Wraps raw interchange bits.
    #[must_use]
    pub const fn from_bits(bits: u32) -> Self {
        Decimal32(bits)
    }

    /// The raw interchange bits.
    #[must_use]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Builds a finite value from sign, coefficient and exponent.
    ///
    /// # Errors
    ///
    /// Returns [`DpdError::CoefficientTooWide`] for coefficients beyond seven
    /// digits and [`DpdError::ExponentOutOfRange`] for exponents outside
    /// `[-101, 90]`.
    pub fn from_parts(sign: Sign, coefficient: Bcd64, exponent: i32) -> Result<Self, DpdError> {
        if coefficient.significant_digits() > Self::PRECISION {
            return Err(DpdError::CoefficientTooWide {
                precision: Self::PRECISION,
            });
        }
        if !(Self::EMIN_Q..=Self::EMAX_Q).contains(&exponent) {
            return Err(DpdError::ExponentOutOfRange {
                min: Self::EMIN_Q,
                max: Self::EMAX_Q,
            });
        }
        let biased = (exponent + Self::BIAS) as u32;
        let exp_high = biased >> Self::EXP_CONT_BITS;
        let exp_cont = biased & ((1 << Self::EXP_CONT_BITS) - 1);
        let msd = coefficient.digit(6);
        let combo = if msd <= 7 {
            (exp_high << 3) | u32::from(msd)
        } else {
            0b11000 | (exp_high << 1) | u32::from(msd - 8)
        };
        let mut coeff_cont = 0u32;
        for i in 0..2 {
            let triple = ((coefficient.raw() >> (12 * i)) & 0xFFF) as u16;
            coeff_cont |= u32::from(encode_declet_bcd(triple)) << (10 * i);
        }
        Ok(Decimal32(
            (u32::from(sign == Sign::Negative) << 31)
                | (combo << Self::COMBO_SHIFT)
                | (exp_cont << Self::EXP_CONT_SHIFT)
                | coeff_cont,
        ))
    }

    /// Classifies the value.
    #[must_use]
    pub fn classify(self) -> Class {
        let combo = (self.0 >> Self::COMBO_SHIFT) & 0x1F;
        if combo >> 1 == 0b1111 {
            if combo & 1 == 0 {
                Class::Infinity
            } else if self.0 & (1 << 25) != 0 {
                Class::SignalingNan
            } else {
                Class::QuietNan
            }
        } else {
            Class::Finite
        }
    }

    /// The sign bit.
    #[must_use]
    pub fn sign(self) -> Sign {
        if self.0 >> 31 == 1 {
            Sign::Negative
        } else {
            Sign::Positive
        }
    }

    /// True for finite values.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.classify() == Class::Finite
    }

    /// Decomposes a finite value.
    ///
    /// # Errors
    ///
    /// Returns [`DpdError::NotFinite`] for infinities and NaNs.
    pub fn to_parts(self) -> Result<Parts32, DpdError> {
        if !self.is_finite() {
            return Err(DpdError::NotFinite);
        }
        let combo = (self.0 >> Self::COMBO_SHIFT) & 0x1F;
        let (exp_high, msd) = if combo >> 3 == 0b11 {
            ((combo >> 1) & 0b11, 8 + (combo & 1))
        } else {
            (combo >> 3, combo & 0b111)
        };
        let exp_cont = (self.0 >> Self::EXP_CONT_SHIFT) & ((1 << Self::EXP_CONT_BITS) - 1);
        let biased = (exp_high << Self::EXP_CONT_BITS) | exp_cont;
        let mut raw = u64::from(msd) << 24;
        for i in 0..2 {
            let declet = ((self.0 >> (10 * i)) & 0x3FF) as u16;
            raw |= u64::from(decode_declet_bcd(declet)) << (12 * i);
        }
        Ok(Parts32 {
            sign: self.sign(),
            coefficient: Bcd64::from_raw_unchecked(raw),
            exponent: biased as i32 - Self::BIAS,
        })
    }
}

impl Default for Decimal32 {
    fn default() -> Self {
        Decimal32::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_encodes_to_known_bits() {
        // decimal32 1 = 0x22500001.
        let one = Decimal32::from_parts(Sign::Positive, Bcd64::ONE, 0).unwrap();
        assert_eq!(one.to_bits(), 0x2250_0001);
    }

    #[test]
    fn parts_roundtrip() {
        for (coeff, exp) in [(0u64, 0i32), (9_999_999, 90), (1, -101), (8_765_432, 0)] {
            let c = Bcd64::from_value(coeff).unwrap();
            let v = Decimal32::from_parts(Sign::Negative, c, exp).unwrap();
            let p = v.to_parts().unwrap();
            assert_eq!((p.sign, p.coefficient, p.exponent), (Sign::Negative, c, exp));
        }
    }

    #[test]
    fn range_checks() {
        assert!(Decimal32::from_parts(
            Sign::Positive,
            Bcd64::from_value(10_000_000).unwrap(),
            0
        )
        .is_err());
        assert!(Decimal32::from_parts(Sign::Positive, Bcd64::ONE, 91).is_err());
    }

    #[test]
    fn specials() {
        assert_eq!(Decimal32::INFINITY.classify(), Class::Infinity);
        assert_eq!(Decimal32::NAN.classify(), Class::QuietNan);
        assert!(Decimal32::ZERO.is_finite());
    }
}
