//! Prints the assembled Method-1 guest kernel as a disassembly listing —
//! the generated machine code a cross-toolchain would have produced, with
//! the custom-0 RoCC instructions visible inline.
//!
//! ```text
//! cargo run --release --example disassemble_kernel -- method1
//! ```

use decimalarith::codesign::framework::build_guest;
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::testgen::{generate, TestConfig};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "method1".into());
    let kind = match which.as_str() {
        "software" => KernelKind::Software,
        "bid" => KernelKind::SoftwareBid,
        "method1" => KernelKind::Method1,
        "dummy" => KernelKind::Method1Dummy,
        "method2" => KernelKind::Method2,
        "method3" => KernelKind::Method3,
        "method4" => KernelKind::Method4,
        other => {
            eprintln!("unknown kernel {other:?}; use software|bid|method1|dummy|method2|method3|method4");
            std::process::exit(2);
        }
    };
    let vectors = generate(&TestConfig {
        count: 1,
        ..TestConfig::default()
    });
    let guest = build_guest(kind, &vectors, 1).expect("kernel assembles");
    let listing = guest.program.disassemble();
    println!(
        "{} — {} instructions, {} bytes of text, {} bytes of data\n",
        kind.name(),
        listing.len(),
        guest.program.text.data.len(),
        guest.program.data.data.len(),
    );
    let mut custom_count = 0;
    for (addr, word, text) in &listing {
        if text.contains("custom") {
            custom_count += 1;
        }
        println!("{addr:#010x}  {word:08x}  {text}");
    }
    println!("\n{custom_count} custom-0 (RoCC) instruction sites in the binary");
}
