//! # decimalarith — software-hardware co-design of decimal computation,
//! evaluated cycle-accurately in a RISC-V ecosystem
//!
//! This workspace reproduces Mian, Shintani & Inoue, *"Cycle-Accurate
//! Evaluation of Software-Hardware Co-Design of Decimal Computation in
//! RISC-V Ecosystem"* (SOCC 2019): a framework in which a decimal
//! accelerator (one BCD carry-lookahead adder behind the RoCC interface)
//! and the software around it are evaluated together, cycle-accurately, on
//! a Rocket-like RISC-V core — against a decNumber-style pure-software
//! baseline and against the prior art's dummy-function estimation.
//!
//! This crate is the umbrella: it re-exports every subsystem so examples
//! and downstream users can depend on one crate.
//!
//! ```
//! use decimalarith::codesign::native::{method1_multiply_accel, software_multiply};
//! use decimalarith::decnum::Status;
//!
//! let x = decimalarith::codesign::parse_decimal64("19.99").unwrap();
//! let y = decimalarith::codesign::parse_decimal64("3").unwrap();
//! let mut s = Status::CLEAR;
//! let product = method1_multiply_accel(x, y, &mut s);
//! let mut s2 = Status::CLEAR;
//! assert_eq!(product.to_bits(), software_multiply(x, y, &mut s2).to_bits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atomic_sim;
pub use bcd;
pub use codesign;
pub use decnum;
pub use dpd;
pub use lockstep;
pub use riscv_asm;
pub use riscv_isa;
pub use riscv_sim;
pub use rocc;
pub use rocket_sim;
pub use testgen;
