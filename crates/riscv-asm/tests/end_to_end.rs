//! Assemble-and-run tests: golden guest programs executed on the functional
//! simulator.

use riscv_asm::{assemble, Program, STACK_TOP};
use riscv_isa::Reg;
use riscv_sim::Cpu;

fn run(source: &str) -> (i64, Cpu) {
    let program = assemble(source).unwrap_or_else(|e| panic!("assembly failed: {e}"));
    let mut cpu = load(&program);
    let code = cpu.run(10_000_000).expect("program faulted");
    (code, cpu)
}

fn load(program: &Program) -> Cpu {
    let mut cpu = Cpu::new();
    for seg in program.segments() {
        if !seg.data.is_empty() {
            cpu.memory.load_bytes(seg.base, &seg.data).unwrap();
        }
    }
    cpu.set_pc(program.entry);
    cpu.set_reg(Reg::SP, STACK_TOP);
    cpu
}

#[test]
fn exit_code_is_returned() {
    let (code, _) = run("
        start:
            li a0, 42
            li a7, 93
            ecall
    ");
    assert_eq!(code, 42);
}

#[test]
fn fibonacci_iterative() {
    let (code, _) = run("
        start:
            li t0, 0        # fib(0)
            li t1, 1        # fib(1)
            li t2, 20       # n
        loop:
            add t3, t0, t1
            mv  t0, t1
            mv  t1, t3
            addi t2, t2, -1
            bgtz t2, loop
            mv a0, t0
            li a7, 93
            ecall
    ");
    assert_eq!(code, 6765); // fib(20)
}

#[test]
fn function_call_and_stack() {
    let (code, _) = run("
        start:
            li a0, 5
            call square
            li a7, 93
            ecall
        square:
            addi sp, sp, -16
            sd ra, 8(sp)
            mul a0, a0, a0
            ld ra, 8(sp)
            addi sp, sp, 16
            ret
    ");
    assert_eq!(code, 25);
}

#[test]
fn data_section_and_loads() {
    let (code, _) = run("
        start:
            la t0, values
            ld a0, 0(t0)
            ld t1, 8(t0)
            add a0, a0, t1
            lw t2, 16(t0)
            add a0, a0, t2
            li a7, 93
            ecall
        .data
        values:
            .dword 100, 200
            .word 50
    ");
    assert_eq!(code, 350);
}

#[test]
fn string_data_and_write_syscall() {
    let (code, cpu) = run(r#"
        start:
            li a0, 1
            la a1, msg
            li a2, 14
            li a7, 64
            ecall
            li a0, 0
            li a7, 93
            ecall
        .data
        msg:
            .asciz "hello, rocket\n"
    "#);
    assert_eq!(code, 0);
    assert_eq!(cpu.console, b"hello, rocket\n");
}

#[test]
fn li_wide_constants() {
    for value in [
        0i64,
        2047,
        -2048,
        0x7FFF_FFFF,
        -0x8000_0000,
        0x1234_5678,
        0x0008_0000_0000,
        0x1234_5678_9ABC_DEF0u64 as i64,
        -1,
        i64::MIN,
        i64::MAX,
    ] {
        let source = format!(
            "
            start:
                li a0, {value}
                li a7, 93
                ecall
            "
        );
        let program = assemble(&source).unwrap();
        let mut cpu = load(&program);
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::A0), value as u64, "li {value:#x}");
    }
}

#[test]
fn equ_and_symbol_immediates() {
    let (code, _) = run("
        .equ ANSWER, 42
        start:
            li a0, 0
            addi a0, a0, ANSWER
            li a7, 93
            ecall
    ");
    assert_eq!(code, 42);
}

#[test]
fn branch_pseudo_instructions() {
    let (code, _) = run("
        start:
            li t0, 5
            li t1, 3
            li a0, 0
            bgt t0, t1, took_bgt
            li a7, 93
            ecall
        took_bgt:
            addi a0, a0, 1
            ble t1, t0, took_ble
            li a7, 93
            ecall
        took_ble:
            addi a0, a0, 1
            bltz t0, not_taken
            addi a0, a0, 1
        not_taken:
            li a7, 93
            ecall
    ");
    assert_eq!(code, 3);
}

#[test]
fn rdcycle_and_markers() {
    let (_, cpu) = run("
        start:
            li a0, 1
            li a7, 0x700
            ecall            # mark 1
            nop
            nop
            li a0, 2
            li a7, 0x700
            ecall            # mark 2
            li a0, 0
            li a7, 93
            ecall
    ");
    assert_eq!(cpu.markers.len(), 2);
    assert!(cpu.markers[1].instret > cpu.markers[0].instret);
}

#[test]
fn rocc_custom_syntax_assembles() {
    // No accelerator attached, so executing would fault; just check encoding.
    let program = assemble("
        start:
            custom0 4, a2, a1, a0, 1, 1, 1
    ")
    .unwrap();
    let word = u32::from_le_bytes(program.text.data[0..4].try_into().unwrap());
    assert_eq!(word, 0x08A5_F60B);
}

#[test]
fn word_aligned_align_directive() {
    let program = assemble("
        start:
            nop
        .align 4
        target:
            nop
        .data
            .byte 1
        .align 3
        d2:
            .dword 5
    ")
    .unwrap();
    assert_eq!(program.symbol("target").unwrap() % 16, 0);
    assert_eq!(program.symbol("d2").unwrap() % 8, 0);
}

#[test]
fn errors_carry_line_numbers() {
    let err = assemble("start:\n    bogus a0, a1\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("bogus"));

    let err2 = assemble("    li a0, undefined_sym\n").unwrap_err();
    assert!(err2.message.contains("la"));

    let err3 = assemble("x:\nx:\n").unwrap_err();
    assert!(err3.message.contains("duplicate"));
}

#[test]
fn recursive_function_factorial() {
    let (code, _) = run("
        start:
            li a0, 10
            call fact
            li a7, 93
            ecall
        fact:
            addi sp, sp, -16
            sd ra, 8(sp)
            sd s0, 0(sp)
            mv s0, a0
            li t0, 2
            blt a0, t0, base
            addi a0, a0, -1
            call fact
            mul a0, a0, s0
            j done
        base:
            li a0, 1
        done:
            ld ra, 8(sp)
            ld s0, 0(sp)
            addi sp, sp, 16
            ret
    ");
    assert_eq!(code, 3_628_800);
}

#[test]
fn memcpy_loop() {
    let (code, cpu) = run(r#"
        start:
            la t0, src
            la t1, dst
            li t2, 16
        copy:
            lb t3, 0(t0)
            sb t3, 0(t1)
            addi t0, t0, 1
            addi t1, t1, 1
            addi t2, t2, -1
            bnez t2, copy
            la t1, dst
            ld a0, 8(t1)
            li a7, 93
            ecall
        .data
        src:
            .dword 0x1111111111111111
            .dword 0x2222222222222222
        dst:
            .space 16
    "#);
    assert_eq!(code as u64, 0x2222_2222_2222_2222);
    let dst = cpu.memory.read_u64(assemble_symbol("dst")).unwrap();
    assert_eq!(dst, 0x1111_1111_1111_1111);
}

fn assemble_symbol(_name: &str) -> u64 {
    // dst = DATA_BASE + 16 in the program above.
    riscv_asm::DATA_BASE + 16
}

#[test]
fn disassembly_roundtrips_through_the_decoder() {
    let program = assemble("
        start:
            li   a0, 42
            call helper
            li   a7, 93
            ecall
        helper:
            addi a0, a0, 1
            ret
    ")
    .unwrap();
    let listing = program.disassemble();
    assert_eq!(listing.len() * 4, program.text.data.len());
    let text: Vec<String> = listing.iter().map(|(_, _, s)| s.clone()).collect();
    assert!(text.iter().any(|l| l.starts_with("start: ")), "{text:?}");
    assert!(text.iter().any(|l| l.contains("ecall")));
    assert!(text.iter().any(|l| l.starts_with("helper: addi")));
    // No undecodable words in assembled output.
    assert!(text.iter().all(|l| !l.contains(".word")));
}
