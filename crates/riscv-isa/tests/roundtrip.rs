//! Encode/decode roundtrip property tests.
//!
//! The `instr()` strategy covers every instruction form the crate can
//! encode — all ALU op variants (with shift shamt ranges respected), all
//! three CSR ops in both register and immediate form, all four custom
//! opcodes, and the opcode-less system instructions — so the proptest
//! suite exercises the full encoder/decoder surface. The deterministic
//! `exhaustive_variant_sweep` test below additionally pins every variant
//! at its operand boundaries so a regression cannot hide behind shrinking.

use proptest::prelude::*;
use riscv_isa::instr::{BranchOp, CsrOp, LoadOp, Op32Op, OpImm32Op, OpImmOp, OpOp, StoreOp};
use riscv_isa::rocc::{CustomOpcode, RoccInstruction};
use riscv_isa::{Instr, Reg};

const BRANCH_OPS: [BranchOp; 6] = [
    BranchOp::Beq,
    BranchOp::Bne,
    BranchOp::Blt,
    BranchOp::Bge,
    BranchOp::Bltu,
    BranchOp::Bgeu,
];

const OP_OPS: [OpOp; 18] = [
    OpOp::Add,
    OpOp::Sub,
    OpOp::Sll,
    OpOp::Slt,
    OpOp::Sltu,
    OpOp::Xor,
    OpOp::Srl,
    OpOp::Sra,
    OpOp::Or,
    OpOp::And,
    OpOp::Mul,
    OpOp::Mulh,
    OpOp::Mulhsu,
    OpOp::Mulhu,
    OpOp::Div,
    OpOp::Divu,
    OpOp::Rem,
    OpOp::Remu,
];

const OP32_OPS: [Op32Op; 10] = [
    Op32Op::Addw,
    Op32Op::Subw,
    Op32Op::Sllw,
    Op32Op::Srlw,
    Op32Op::Sraw,
    Op32Op::Mulw,
    Op32Op::Divw,
    Op32Op::Divuw,
    Op32Op::Remw,
    Op32Op::Remuw,
];

const LOAD_OPS: [LoadOp; 7] = [
    LoadOp::Lb,
    LoadOp::Lh,
    LoadOp::Lw,
    LoadOp::Ld,
    LoadOp::Lbu,
    LoadOp::Lhu,
    LoadOp::Lwu,
];

const STORE_OPS: [StoreOp; 4] = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw, StoreOp::Sd];

/// OP-IMM variants taking a full 12-bit immediate (the shift forms take a
/// 6-bit shamt instead and are generated separately).
const OP_IMM_FULL: [OpImmOp; 6] = [
    OpImmOp::Addi,
    OpImmOp::Slti,
    OpImmOp::Sltiu,
    OpImmOp::Xori,
    OpImmOp::Ori,
    OpImmOp::Andi,
];

const OP_IMM_SHIFTS: [OpImmOp; 3] = [OpImmOp::Slli, OpImmOp::Srli, OpImmOp::Srai];

const OP_IMM32_SHIFTS: [OpImm32Op; 3] = [OpImm32Op::Slliw, OpImm32Op::Srliw, OpImm32Op::Sraiw];

const CSR_OPS: [CsrOp; 3] = [CsrOp::Csrrw, CsrOp::Csrrs, CsrOp::Csrrc];

const CUSTOM_OPCODES: [CustomOpcode; 4] = [
    CustomOpcode::Custom0,
    CustomOpcode::Custom1,
    CustomOpcode::Custom2,
    CustomOpcode::Custom3,
];

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn pick<T: Clone + core::fmt::Debug + 'static>(items: &[T]) -> impl Strategy<Value = T> {
    proptest::sample::select(items.to_vec())
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Instr::Lui { rd, imm20 }),
        (reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Instr::Auipc { rd, imm20 }),
        (reg(), (-(1i32 << 19)..(1 << 19)).prop_map(|o| o * 2))
            .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (reg(), reg(), -2048i32..=2047)
            .prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (pick(&BRANCH_OPS), reg(), reg(), (-2048i32..2048).prop_map(|o| o * 2))
            .prop_map(|(op, rs1, rs2, offset)| Instr::Branch { op, rs1, rs2, offset }),
        (pick(&LOAD_OPS), reg(), reg(), -2048i32..=2047)
            .prop_map(|(op, rd, rs1, offset)| Instr::Load { op, rd, rs1, offset }),
        (pick(&STORE_OPS), reg(), reg(), -2048i32..=2047)
            .prop_map(|(op, rs2, rs1, offset)| Instr::Store { op, rs2, rs1, offset }),
        (pick(&OP_IMM_FULL), reg(), reg(), -2048i32..=2047)
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (pick(&OP_IMM_SHIFTS), reg(), reg(), 0i32..64)
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm { op, rd, rs1, imm }),
        (reg(), reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instr::OpImm32 {
            op: OpImm32Op::Addiw,
            rd,
            rs1,
            imm
        }),
        (pick(&OP_IMM32_SHIFTS), reg(), reg(), 0i32..32)
            .prop_map(|(op, rd, rs1, imm)| Instr::OpImm32 { op, rd, rs1, imm }),
        (pick(&OP_OPS), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        (pick(&OP32_OPS), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op32 { op, rd, rs1, rs2 }),
        Just(Instr::Fence),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        Just(Instr::Mret),
        (pick(&CSR_OPS), reg(), reg(), 0u16..4096)
            .prop_map(|(op, rd, rs1, csr)| Instr::Csr { op, rd, csr, rs1 }),
        (pick(&CSR_OPS), reg(), 0u16..4096, 0u8..32)
            .prop_map(|(op, rd, csr, imm)| Instr::CsrImm { op, rd, csr, imm }),
        (
            pick(&CUSTOM_OPCODES),
            reg(),
            reg(),
            reg(),
            0u8..128,
            any::<bool>(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(opcode, rd, rs1, rs2, funct7, xd, xs1, xs2)| {
                Instr::Custom(RoccInstruction { opcode, funct7, rd, rs1, rs2, xd, xs1, xs2 })
            }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(i in instr()) {
        let word = i.encode().unwrap();
        let back = Instr::decode(word).unwrap();
        prop_assert_eq!(back, i, "word {:#010x}", word);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = Instr::decode(word);
    }

    #[test]
    fn decoded_reencodes_identically(word in any::<u32>()) {
        if let Ok(i) = Instr::decode(word) {
            // Decoding is not necessarily injective (e.g. fence variants all
            // decode to Fence), but re-encoding must re-decode to the same
            // instruction.
            let word2 = i.encode().unwrap();
            prop_assert_eq!(Instr::decode(word2).unwrap(), i);
        }
    }

    #[test]
    fn display_never_panics(i in instr()) {
        let _ = i.to_string();
    }
}

/// Asserts `encode(i)` decodes back to `i` and that the decoded value
/// re-encodes to the identical word.
fn assert_roundtrip(i: Instr) {
    let word = i.encode().unwrap_or_else(|e| panic!("{i}: encode failed: {e}"));
    let back =
        Instr::decode(word).unwrap_or_else(|e| panic!("{i} ({word:#010x}): decode failed: {e}"));
    assert_eq!(back, i, "word {word:#010x}");
    assert_eq!(back.encode().unwrap(), word, "re-encode of {i}");
}

/// Deterministic sweep of every instruction variant at operand boundaries:
/// register extremes, immediate min/mid/max, shamt limits, CSR address
/// limits, and every RoCC funct7/xd/xs1/xs2 edge.
#[test]
fn exhaustive_variant_sweep() {
    let regs = [Reg::new(0), Reg::new(1), Reg::new(15), Reg::new(31)];
    let imm12 = [-2048i32, -1, 0, 1, 2047];
    let imm20 = [-(1i32 << 19), -1, 0, 1, (1 << 19) - 1];

    for &rd in &regs {
        for &imm in &imm20 {
            assert_roundtrip(Instr::Lui { rd, imm20: imm });
            assert_roundtrip(Instr::Auipc { rd, imm20: imm });
            assert_roundtrip(Instr::Jal { rd, offset: imm * 2 });
        }
        for &rs1 in &regs {
            for &imm in &imm12 {
                assert_roundtrip(Instr::Jalr { rd, rs1, offset: imm });
            }
        }
    }

    for op in BRANCH_OPS {
        for &rs1 in &regs {
            for &rs2 in &regs {
                for offset in [-4096i32, -2, 0, 2, 4094] {
                    assert_roundtrip(Instr::Branch { op, rs1, rs2, offset });
                }
            }
        }
    }

    for &rd in &regs {
        for &rs1 in &regs {
            for &offset in &imm12 {
                for op in LOAD_OPS {
                    assert_roundtrip(Instr::Load { op, rd, rs1, offset });
                }
                for op in STORE_OPS {
                    assert_roundtrip(Instr::Store { op, rs2: rd, rs1, offset });
                }
                for op in OP_IMM_FULL {
                    assert_roundtrip(Instr::OpImm { op, rd, rs1, imm: offset });
                }
                assert_roundtrip(Instr::OpImm32 {
                    op: OpImm32Op::Addiw,
                    rd,
                    rs1,
                    imm: offset,
                });
            }
            for op in OP_IMM_SHIFTS {
                for shamt in [0i32, 1, 31, 32, 63] {
                    assert_roundtrip(Instr::OpImm { op, rd, rs1, imm: shamt });
                }
            }
            for op in OP_IMM32_SHIFTS {
                for shamt in [0i32, 1, 31] {
                    assert_roundtrip(Instr::OpImm32 { op, rd, rs1, imm: shamt });
                }
            }
            for &rs2 in &regs {
                for op in OP_OPS {
                    assert_roundtrip(Instr::Op { op, rd, rs1, rs2 });
                }
                for op in OP32_OPS {
                    assert_roundtrip(Instr::Op32 { op, rd, rs1, rs2 });
                }
            }
        }
    }

    for op in CSR_OPS {
        for &rd in &regs {
            for csr in [0u16, 1, 0x305, 0xFFF] {
                for &rs1 in &regs {
                    assert_roundtrip(Instr::Csr { op, rd, csr, rs1 });
                }
                for imm in [0u8, 1, 15, 31] {
                    assert_roundtrip(Instr::CsrImm { op, rd, csr, imm });
                }
            }
        }
    }

    for opcode in CUSTOM_OPCODES {
        for funct7 in [0u8, 1, 12, 63, 127] {
            for &rd in &regs {
                for (xd, xs1, xs2) in [
                    (false, false, false),
                    (true, false, false),
                    (true, true, false),
                    (true, true, true),
                    (false, true, true),
                ] {
                    assert_roundtrip(Instr::Custom(RoccInstruction {
                        opcode,
                        funct7,
                        rd,
                        rs1: Reg::new(31),
                        rs2: Reg::new(1),
                        xd,
                        xs1,
                        xs2,
                    }));
                }
            }
        }
    }

    for i in [Instr::Fence, Instr::Ecall, Instr::Ebreak, Instr::Mret, Instr::NOP] {
        assert_roundtrip(i);
    }
}
