//! Native (host-speed) implementations of the multiplication methods.
//!
//! [`method1_multiply`] is the Fig. 1 flow of the paper: software handles
//! specials, sign/exponent, DPD⇄BCD conversion and rounding, while every
//! decimal addition — multiplicand-multiple generation and partial-product
//! accumulation — goes through an [`AccelBackend`]. With [`ClaBackend`] this
//! is the co-design proper; with [`DummyBackend`] it is the prior art's
//! estimation configuration (wrong results, altered control flow); with
//! [`SoftwareBackend`] it is a software-only reference of the same flow.
//!
//! [`software_multiply`] is the decNumber-style baseline.

use bcd::Bcd64;
use decnum::{Context, Status};
use dpd::{Class, Decimal64, Sign};

use crate::backend::{AccelBackend, ClaBackend, DummyBackend, SoftwareBackend};

/// decimal64 landmarks in *biased* form (bias 398).
const BIASED_EMIN_ADJ: i64 = 15; // adjusted exponent of emin (-383 + 398)
const BIASED_EMAX_ADJ: i64 = 782; // adjusted exponent of emax (384 + 398)
const BIASED_ETOP: i64 = 767; // largest biased exponent (369 + 398)

/// The pure-software baseline: IBM-decNumber-style multiplication through
/// the `decnum` reference library, merging raised flags into `status`.
#[must_use]
pub fn software_multiply(x: Decimal64, y: Decimal64, status: &mut Status) -> Decimal64 {
    let mut ctx = Context::decimal64();
    let result = decnum::mul_decimal64(x, y, &mut ctx);
    status.set(ctx.status());
    result
}

/// Method-1 with the real BCD-CLA accelerator model.
#[must_use]
pub fn method1_multiply_accel(x: Decimal64, y: Decimal64, status: &mut Status) -> Decimal64 {
    method1_multiply(x, y, &mut ClaBackend::new(), status)
}

/// Method-1 with the paper's dummy functions (results are wrong by design).
#[must_use]
pub fn method1_multiply_dummy(x: Decimal64, y: Decimal64, status: &mut Status) -> Decimal64 {
    method1_multiply(x, y, &mut DummyBackend::new(), status)
}

/// Method-1 with software BCD arithmetic standing in for the accelerator.
#[must_use]
pub fn method1_multiply_software(x: Decimal64, y: Decimal64, status: &mut Status) -> Decimal64 {
    method1_multiply(x, y, &mut SoftwareBackend::new(), status)
}

/// A canonical quiet NaN carrying `payload` (low 15 digits) and `sign`.
fn quiet_nan(sign: Sign, payload: Bcd64) -> Decimal64 {
    let mut cont = 0u64;
    for i in 0..5 {
        let triple = ((payload.raw() >> (12 * i)) & 0xFFF) as u16;
        cont |= u64::from(dpd::declet::encode_declet_bcd(triple)) << (10 * i);
    }
    let sign_bit = u64::from(sign == Sign::Negative) << 63;
    Decimal64::from_bits(Decimal64::NAN.to_bits() | sign_bit | cont)
}

fn infinity(sign: Sign) -> Decimal64 {
    if sign == Sign::Negative {
        Decimal64::NEG_INFINITY
    } else {
        Decimal64::INFINITY
    }
}

/// Method-1 of the co-design (paper Fig. 1), decimal64 × decimal64.
///
/// Rounding is round-half-even (the format context's default). Status flags
/// matching the reference semantics are merged into `status`.
#[must_use]
pub fn method1_multiply(
    x: Decimal64,
    y: Decimal64,
    backend: &mut dyn AccelBackend,
    status: &mut Status,
) -> Decimal64 {
    // ---- Special? (Fig. 1 top) ----
    for (a, b) in [(x, y), (y, x)] {
        match a.classify() {
            Class::QuietNan | Class::SignalingNan => {
                if a.classify() == Class::SignalingNan || b.classify() == Class::SignalingNan {
                    status.set(Status::INVALID_OPERATION);
                }
                // First NaN operand wins (x before y).
                let source = if x.is_nan() { x } else { y };
                let payload = source.nan_payload().expect("nan operand");
                return quiet_nan(source.sign(), payload);
            }
            _ => {}
        }
    }
    let sign = x.sign().xor(y.sign());
    if x.is_infinite() || y.is_infinite() {
        let other = if x.is_infinite() { y } else { x };
        if other.is_zero() {
            status.set(Status::INVALID_OPERATION);
            return Decimal64::NAN;
        }
        return infinity(sign);
    }

    // ---- Sign / exponent (XOR and addition) ----
    let xp = x.to_parts().expect("finite");
    let yp = y.to_parts().expect("finite");
    // Biased exponent of the exact product's least significant digit.
    let eb = i64::from(xp.exponent) + i64::from(yp.exponent) + 398;

    let xc = xp.coefficient;
    let yc = yp.coefficient;
    if xc.is_zero() || yc.is_zero() {
        let clamped = eb.clamp(0, BIASED_ETOP);
        if clamped != eb {
            status.set(Status::CLAMPED);
        }
        return Decimal64::from_parts(sign, Bcd64::ZERO, clamped as i32 - 398)
            .expect("zero encodes");
    }

    // ---- Multiplicand multiples MM[0..9] via the BCD-CLA ----
    // Each entry is a (hi, lo) pair of packed-BCD words; 9X needs 17 digits.
    let mut mm = [(0u64, 0u64); 10];
    mm[1] = (0, xc.raw());
    for i in 1..9 {
        let lo = backend.dec_add(mm[i].1, mm[1].1);
        let hi = backend.dec_adc(mm[i].0, mm[1].0);
        mm[i + 1] = (hi, lo);
    }

    // ---- Accumulate shifted partial products (Fig. 1 right) ----
    let mut hi = 0u64;
    let mut lo = 0u64;
    for j in (0..16).rev() {
        // product <<= one decimal digit (done in software, like the paper's
        // `product << 4`), then add MM[digit].
        hi = (hi << 4) | (lo >> 60);
        lo <<= 4;
        let d = yc.digit(j) as usize;
        lo = backend.dec_add(lo, mm[d].1);
        hi = backend.dec_adc(hi, mm[d].0);
    }

    // ---- Rounding / exponent adjustment ----
    round_and_encode(sign, hi, lo, eb, false, None, backend, status)
}

/// Shared rounding + range handling + DPD encoding: the software epilogue of
/// every method. Performs at most one rounding of the exact product (at the
/// precision, or at Etiny for subnormal results), then applies overflow and
/// clamping rules — mirroring `decnum`'s `finish` bit for bit.
#[allow(clippy::too_many_arguments)]
fn round_and_encode(
    sign: Sign,
    mut hi: u64,
    mut lo: u64,
    eb_in: i64,
    extra_sticky: bool,
    ideal_eb: Option<i64>,
    backend: &mut dyn AccelBackend,
    status: &mut Status,
) -> Decimal64 {
    let mut eb = eb_in;
    // Exact values below their ideal exponent (addition: min of the operand
    // exponents) only carry working-representation zeros there; strip them
    // so the digit span — and therefore every rounding decision and flag —
    // matches the reference's alignment at the ideal exponent.
    if let Some(ideal) = ideal_eb {
        while eb < ideal && lo & 0xF == 0 && (hi | lo) != 0 {
            lo = (lo >> 4) | (hi << 60);
            hi >>= 4;
            eb += 1;
        }
    }
    let product = bcd::Bcd128::from_halves(
        Bcd64::from_raw_unchecked(hi),
        Bcd64::from_raw_unchecked(lo),
    );
    let n = i64::from(product.significant_digits());
    let subnormal_before = eb + n - 1 < BIASED_EMIN_ADJ;
    let mut discard = (n - 16).max(0);
    if subnormal_before && eb < 0 {
        discard = discard.max(-eb);
    }
    if extra_sticky {
        status.set(Status::INEXACT.union(Status::ROUNDED));
    }
    if discard > 0 {
        status.set(Status::ROUNDED);
        let idx = (discard - 1) as u32;
        let round_digit = if idx < 32 { product.digit(idx) } else { 0 };
        let sticky = extra_sticky
            || if idx >= 32 {
                !product.is_zero()
            } else {
                product.sticky_below(idx)
            };
        // Shift right by `discard` digits across the pair.
        let s = 4 * discard;
        if s < 64 {
            lo = (lo >> s) | (hi << (64 - s));
            hi >>= s;
        } else if s < 128 {
            lo = hi >> (s - 64);
            hi = 0;
        } else {
            lo = 0;
            hi = 0;
        }
        debug_assert_eq!(hi, 0, "rounded coefficient fits sixteen digits");
        if round_digit != 0 || sticky {
            status.set(Status::INEXACT);
        }
        let lsd = (lo & 0xF) as u8;
        let increment =
            round_digit > 5 || (round_digit == 5 && (sticky || lsd % 2 == 1));
        if increment {
            lo = backend.dec_add(lo, 1);
            if backend.carry() {
                // 9999999999999999 + 1: drop the new trailing zero.
                lo = 0x1000_0000_0000_0000;
                eb += 1;
            }
        }
        eb += discard;
    }

    // Flags for subnormal results.
    if subnormal_before {
        status.set(Status::SUBNORMAL);
        if status.contains(Status::INEXACT) {
            status.set(Status::UNDERFLOW);
        }
        if lo == 0 {
            status.set(Status::CLAMPED);
        }
    }

    // Overflow.
    let n_after = i64::from(Bcd64::from_raw_unchecked(lo).significant_digits());
    if lo != 0 && eb + n_after - 1 > BIASED_EMAX_ADJ {
        status.set(
            Status::OVERFLOW
                .union(Status::INEXACT)
                .union(Status::ROUNDED),
        );
        return infinity(sign); // round-half-even overflows to infinity
    }

    // Zero result: clamp the exponent into range.
    if lo == 0 {
        let clamped = eb.clamp(0, BIASED_ETOP);
        if clamped != eb && !subnormal_before {
            status.set(Status::CLAMPED);
        }
        return Decimal64::from_parts(sign, Bcd64::ZERO, clamped as i32 - 398)
            .expect("zero encodes");
    }

    // Clamping: fold an over-large exponent into trailing zeros.
    if eb > BIASED_ETOP {
        let pad = (eb - BIASED_ETOP) as u32;
        lo = Bcd64::from_raw_unchecked(lo).shl_digits(pad).raw();
        eb = BIASED_ETOP;
        status.set(Status::CLAMPED);
    }

    Decimal64::from_parts(sign, Bcd64::from_raw_unchecked(lo), eb as i32 - 398)
        .expect("finished value is in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use decnum::DecNumber as N;

    fn d64(s: &str) -> Decimal64 {
        let mut ctx = Context::decimal64();
        s.parse::<N>().unwrap().to_decimal64(&mut ctx)
    }

    fn check(xs: &str, ys: &str) {
        let (x, y) = (d64(xs), d64(ys));
        let mut ref_status = Status::CLEAR;
        let expected = software_multiply(x, y, &mut ref_status);
        let mut got_status = Status::CLEAR;
        let got = method1_multiply_accel(x, y, &mut got_status);
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "{xs} × {ys}: got {got} want {expected}"
        );
        assert_eq!(got_status, ref_status, "{xs} × {ys} status");
    }

    #[test]
    fn simple_products_match_reference() {
        check("2", "3");
        check("1.20", "3");
        check("-5", "3");
        check("-5", "-3");
        check("902.4", "11.1");
        check("9999999999999999", "2");
    }

    #[test]
    fn rounding_cases_match_reference() {
        check("9999999999999999", "9999999999999999");
        check("1234567890123456", "987654321");
        check("123456789", "999999999");
        check("1111111111111111", "9");
    }

    #[test]
    fn zeros_and_signs() {
        check("0", "5");
        check("-0", "5");
        check("0", "-5");
        check("0E+100", "1E+300");
        check("0E-200", "1E-300");
    }

    #[test]
    fn specials_match_reference() {
        check("NaN", "5");
        check("5", "NaN123");
        check("Infinity", "-5");
        check("-Infinity", "-5");
        check("Infinity", "Infinity");
        check("Infinity", "0");
        check("sNaN", "1");
    }

    #[test]
    fn overflow_underflow_clamping() {
        check("1E+300", "1E+300");
        check("9E+380", "9E+380");
        check("1E-300", "1E-300");
        check("5E-200", "5E-199");
        check("1E+200", "1E+175"); // clamped: exponent 375 > Etop
        check("123E-398", "1E-3"); // subnormal rounding at Etiny
        check("9999999999999999E-398", "1E-5");
    }

    #[test]
    fn dummy_backend_gives_wrong_results() {
        let x = d64("7");
        let y = d64("8");
        let mut s = Status::CLEAR;
        let wrong = method1_multiply_dummy(x, y, &mut s);
        let mut s2 = Status::CLEAR;
        let right = software_multiply(x, y, &mut s2);
        assert_ne!(wrong.to_bits(), right.to_bits());
    }

    #[test]
    fn backend_call_count_is_method1_shape() {
        let x = d64("1234567890123456");
        let y = d64("9876543210987654");
        let mut backend = SoftwareBackend::new();
        let mut s = Status::CLEAR;
        let _ = method1_multiply(x, y, &mut backend, &mut s);
        // 8 multiple-building iterations × 2 + 16 accumulate iterations × 2,
        // plus at most one rounding increment.
        assert!(backend.calls() >= 48, "calls = {}", backend.calls());
        assert!(backend.calls() <= 50, "calls = {}", backend.calls());
    }
}

/// Nine's complement of a packed-BCD word (software, per the paper's split:
/// complements are bit tricks; the carry-propagating adds are hardware).
fn nines(v: u64) -> u64 {
    0x9999_9999_9999_9999 - v
}

/// `a - b` over 128-bit packed-BCD pairs via ten's-complement addition
/// through the backend (requires `a >= b`; the carry out is dropped).
fn backend_sub128(
    backend: &mut dyn AccelBackend,
    a: (u64, u64),
    b: (u64, u64),
) -> (u64, u64) {
    let t_lo = backend.dec_add(nines(b.1), 1);
    let t_hi = backend.dec_adc(nines(b.0), 0);
    let s_lo = backend.dec_add(a.1, t_lo);
    let s_hi = backend.dec_adc(a.0, t_hi);
    (s_hi, s_lo)
}

/// `a + b` over 128-bit packed-BCD pairs through the backend.
fn backend_add128(
    backend: &mut dyn AccelBackend,
    a: (u64, u64),
    b: (u64, u64),
) -> (u64, u64) {
    let s_lo = backend.dec_add(a.1, b.1);
    let s_hi = backend.dec_adc(a.0, b.0);
    (s_hi, s_lo)
}

/// Decimal64 addition through the same co-design split as Method-1: the
/// software part handles specials, decoding, operand alignment and
/// rounding; every carry-propagating decimal addition (including the
/// ten's-complement subtraction for effective-subtract cases) goes through
/// the BCD-CLA backend. This is the framework's demonstration that the
/// Table II `DEC_ADD` instruction directly serves the other operation class
/// the paper's test generator offers.
///
/// Rounding is round-half-even.
#[must_use]
pub fn method1_add(
    x: Decimal64,
    y: Decimal64,
    backend: &mut dyn AccelBackend,
    status: &mut Status,
) -> Decimal64 {
    // ---- specials ----
    if x.is_nan() || y.is_nan() {
        if x.classify() == Class::SignalingNan || y.classify() == Class::SignalingNan {
            status.set(Status::INVALID_OPERATION);
        }
        let source = if x.is_nan() { x } else { y };
        return quiet_nan(source.sign(), source.nan_payload().expect("nan"));
    }
    match (x.is_infinite(), y.is_infinite()) {
        (true, true) => {
            return if x.sign() == y.sign() {
                infinity(x.sign())
            } else {
                status.set(Status::INVALID_OPERATION);
                Decimal64::NAN
            };
        }
        (true, false) => return infinity(x.sign()),
        (false, true) => return infinity(y.sign()),
        (false, false) => {}
    }

    let xp = x.to_parts().expect("finite");
    let yp = y.to_parts().expect("finite");
    let ebx = i64::from(xp.exponent) + 398;
    let eby = i64::from(yp.exponent) + 398;
    let ideal = ebx.min(eby);

    // Both zero: keep the common sign, exponent = min, clamped into range.
    if xp.coefficient.is_zero() && yp.coefficient.is_zero() {
        let sign = if xp.sign == yp.sign {
            xp.sign
        } else {
            Sign::Positive // half-even: opposite-signed zeros sum to +0
        };
        let clamped = ideal.clamp(0, BIASED_ETOP);
        if clamped != ideal {
            status.set(Status::CLAMPED);
        }
        return Decimal64::from_parts(sign, Bcd64::ZERO, clamped as i32 - 398)
            .expect("zero encodes");
    }

    // ---- alignment (software): both operands brought to one working
    // exponent `wb`, 19 digits below the higher MSD, so the 128-bit BCD
    // datapath always suffices; digits shifted below `wb` fold into sticky.
    let top_of = |c: Bcd64, eb: i64| {
        if c.is_zero() {
            i64::MIN
        } else {
            eb + i64::from(c.significant_digits())
        }
    };
    let top = top_of(xp.coefficient, ebx).max(top_of(yp.coefficient, eby));
    let wb = top - 19;
    let align = |c: Bcd64, eb: i64| -> ((u64, u64), bool) {
        let wide = bcd::Bcd128::from_bcd64(c);
        if eb >= wb {
            let shifted = wide.shl_digits((eb - wb) as u32);
            let (h, l) = shifted.to_halves();
            ((h.raw(), l.raw()), false)
        } else {
            let r = (wb - eb) as u32;
            let sticky = if r >= 32 {
                !wide.is_zero()
            } else {
                wide.sticky_below(r)
            };
            let (h, l) = wide.shr_digits(r.min(32)).to_halves();
            ((h.raw(), l.raw()), sticky)
        }
    };
    let (ax, sticky_x) = align(xp.coefficient, ebx);
    let (ay, sticky_y) = align(yp.coefficient, eby);
    let extra_sticky = sticky_x || sticky_y;

    if xp.sign == yp.sign {
        // Effective addition: one wide add through the CLA.
        let (hi, lo) = backend_add128(backend, ax, ay);
        return round_and_encode(
            xp.sign,
            hi,
            lo,
            wb,
            extra_sticky,
            Some(ideal),
            backend,
            status,
        );
    }

    // Effective subtraction. Dropped digits belong to the side that was
    // shifted right, which is always the smaller aligned magnitude, so the
    // winner comparison on aligned values is exact.
    let raw = |v: (u64, u64)| ((v.0 as u128) << 64) | v.1 as u128;
    let (big, small, big_sign) = match raw(ax).cmp(&raw(ay)) {
        std::cmp::Ordering::Greater => (ax, ay, xp.sign),
        std::cmp::Ordering::Less => (ay, ax, yp.sign),
        std::cmp::Ordering::Equal => {
            debug_assert!(!extra_sticky, "drops imply unequal magnitudes");
            // Exact cancellation: +0 under half-even, ideal exponent.
            let clamped = ideal.clamp(0, BIASED_ETOP);
            if clamped != ideal {
                status.set(Status::CLAMPED);
            }
            return Decimal64::from_parts(Sign::Positive, Bcd64::ZERO, clamped as i32 - 398)
                .expect("zero encodes");
        }
    };
    let (mut hi, mut lo) = backend_sub128(backend, big, small);
    if extra_sticky {
        // The true subtrahend was slightly larger than its aligned value:
        // borrow one unit at `wb` and keep the remainder as stickiness.
        let (h2, l2) = backend_sub128(backend, (hi, lo), (0, 1));
        hi = h2;
        lo = l2;
    }
    round_and_encode(
        big_sign,
        hi,
        lo,
        wb,
        extra_sticky,
        Some(ideal),
        backend,
        status,
    )
}

/// The pure-software baseline for addition (decNumber-style reference).
#[must_use]
pub fn software_add(x: Decimal64, y: Decimal64, status: &mut Status) -> Decimal64 {
    let mut ctx = Context::decimal64();
    let result = decnum::add_decimal64(x, y, &mut ctx);
    status.set(ctx.status());
    result
}

/// Method-1-style addition with the real BCD-CLA accelerator model.
#[must_use]
pub fn method1_add_accel(x: Decimal64, y: Decimal64, status: &mut Status) -> Decimal64 {
    method1_add(x, y, &mut ClaBackend::new(), status)
}
