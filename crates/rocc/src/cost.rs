//! Hardware cost model for the accelerator design points.
//!
//! The paper motivates co-design by the Pareto trade-off between hardware
//! cost and performance; its §V discusses the accelerator's "hardware
//! overhead". This module assigns each method's accelerator configuration a
//! first-order NAND2-equivalent gate count built from the `bcd::cla` block
//! estimates, so the framework can print cost-vs-cycles Pareto tables.

use bcd::cla::{regfile_cost, register_cost, BcdCla, GateCost};

/// Which hardware blocks a design point instantiates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceleratorConfig {
    /// Display name ("Method-1", …).
    pub name: String,
    /// BCD-CLA width in digits (every config has one — it is the paper's
    /// single mandatory block).
    pub cla_digits: u32,
    /// Number of 128-bit register-file entries kept inside the accelerator.
    pub wide_registers: u64,
    /// A digit-multiple generator (×0..×9 selector built from shifted CLA
    /// passes), used by Method-3.
    pub digit_multiplier: bool,
    /// A full 16×16-digit iterative multiplier datapath, used by Method-4.
    pub full_multiplier: bool,
    /// The shift-and-add-3 binary→BCD converter backing `DEC_CNV`.
    pub converter: bool,
}

impl AcceleratorConfig {
    /// Method-1 of the paper: one BCD-CLA, operands stream through the core
    /// registers, the multiples table lives in core memory.
    #[must_use]
    pub fn method1() -> Self {
        AcceleratorConfig {
            name: "Method-1".into(),
            cla_digits: 16,
            wide_registers: 2, // cmd/operand staging registers only
            digit_multiplier: false,
            full_multiplier: false,
            converter: false,
        }
    }

    /// Method-2: the multiples table moves into a wide internal register
    /// file, halving core↔accelerator traffic.
    #[must_use]
    pub fn method2() -> Self {
        AcceleratorConfig {
            name: "Method-2".into(),
            cla_digits: 16,
            // The multiples table 1X..9X plus the accumulator live inside.
            wide_registers: 10,
            digit_multiplier: false,
            full_multiplier: false,
            converter: false,
        }
    }

    /// Method-3: a digit-multiple generator removes the multiples table
    /// entirely; software only streams multiplier digits.
    #[must_use]
    pub fn method3() -> Self {
        AcceleratorConfig {
            name: "Method-3".into(),
            cla_digits: 16,
            wide_registers: 4,
            digit_multiplier: true,
            full_multiplier: false,
            converter: false,
        }
    }

    /// Method-4: the whole coefficient multiplication happens in hardware.
    #[must_use]
    pub fn method4() -> Self {
        AcceleratorConfig {
            name: "Method-4".into(),
            cla_digits: 16,
            wide_registers: 4,
            digit_multiplier: true,
            full_multiplier: true,
            converter: false,
        }
    }

    /// All four design points, in method order.
    #[must_use]
    pub fn all_methods() -> Vec<AcceleratorConfig> {
        vec![
            AcceleratorConfig::method1(),
            AcceleratorConfig::method2(),
            AcceleratorConfig::method3(),
            AcceleratorConfig::method4(),
        ]
    }

    /// Total area/delay estimate for this configuration.
    #[must_use]
    pub fn cost(&self) -> GateCost {
        // Interface + decode + FSM: roughly 60 flops of command/response
        // staging plus a few dozen gates of decode.
        let mut total = GateCost {
            gates: 420,
            delay_levels: 3,
        };
        let cla = BcdCla::new(self.cla_digits.clamp(1, 16)).cost();
        total = total.parallel(GateCost {
            gates: cla.gates,
            delay_levels: cla.delay_levels,
        });
        // Carry flag and its control are tiny and folded into the
        // interface estimate above.
        if self.wide_registers > 0 {
            let rf = regfile_cost(self.wide_registers, 128);
            total.gates += rf.gates;
        }
        if self.digit_multiplier {
            // One-cycle X×digit needs 2X/4X/8X generated in parallel (three
            // physical CLA-equivalents), a compose adder pair, and a 10:1
            // selector.
            total.gates += cla.gates * 5 + 128 * 10;
        }
        if self.full_multiplier {
            // Iterative multiplier: wide accumulate datapath (two CLA
            // widths), multiplier digit recoder, and control.
            total.gates += cla.gates * 2 + register_cost(128).gates + 600;
        }
        if self.converter {
            // Shift-and-add-3 correction logic across 32 digits.
            total.gates += 32 * 12 + register_cost(128).gates;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn methods_are_monotonically_larger() {
        let costs: Vec<u64> = AcceleratorConfig::all_methods()
            .iter()
            .map(|c| c.cost().gates)
            .collect();
        assert!(
            costs.windows(2).all(|w| w[0] < w[1]),
            "gate counts must grow Method-1 .. Method-4: {costs:?}"
        );
    }

    #[test]
    fn method1_is_small() {
        // Method-1's selling point: one CLA plus interface — a few thousand
        // NAND2 equivalents at most.
        let c = AcceleratorConfig::method1().cost();
        assert!(c.gates < 5_000, "{} gates", c.gates);
    }

    #[test]
    fn converter_adds_area() {
        let mut with = AcceleratorConfig::method1();
        with.converter = true;
        assert!(with.cost().gates > AcceleratorConfig::method1().cost().gates);
    }
}
