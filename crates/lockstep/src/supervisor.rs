//! Per-case run supervision: budgets, a typed outcome taxonomy, and
//! bounded retry with quarantine.
//!
//! Campaigns replay one guest program hundreds of times with injected
//! faults; a single pathological replay must degrade to a logged skip, not
//! take the whole campaign down. The supervisor enforces three budgets on
//! every case:
//!
//! * **instruction fuel** — the replay retires at most this many
//!   instructions;
//! * **memory-page cap** — the guest may not map more than this many
//!   4 KiB pages (a fault that turns a loop counter into a giant store
//!   stride would otherwise eat host memory);
//! * **wall clock** — a hard real-time bound, checked periodically.
//!
//! and classifies every termination into the [`RunOutcome`] taxonomy.
//! [`supervise`] then retries the retryable outcomes (wedges that may be
//! an artifact of scheduling rather than the injected fault) a bounded
//! number of times with doubling backoff; a case that stays wedged is
//! quarantined by the caller.

use std::time::{Duration, Instant};

use riscv_isa::csr::cause;
use riscv_sim::{Cpu, CpuError, Event};

/// How often (in retired instructions) the wall-clock budget is polled.
const WALL_CLOCK_POLL: u64 = 4096;

/// Resource budgets for one supervised case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseBudget {
    /// Maximum instructions the case may retire.
    pub instruction_fuel: u64,
    /// Maximum mapped 4 KiB guest pages, if capped.
    pub memory_pages: Option<usize>,
    /// Maximum host wall-clock time, if capped (polled every
    /// [`WALL_CLOCK_POLL`] instructions).
    pub wall_clock: Option<Duration>,
}

impl Default for CaseBudget {
    fn default() -> Self {
        CaseBudget {
            instruction_fuel: 2_000_000,
            memory_pages: Some(4096), // 16 MiB of guest memory
            wall_clock: None,
        }
    }
}

/// Why a case counts as wedged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WedgeReason {
    /// The core's RoCC busy-watchdog aborted a hung accelerator handshake
    /// and no trap vector was armed ([`CpuError::RoccTimeout`]).
    WatchdogAbort,
    /// Fuel ran out while the trap log shows the guest spinning on
    /// watchdog traps — it is retrying a permanently wedged accelerator.
    Livelock,
    /// The wall-clock budget expired.
    WallClock,
}

impl WedgeReason {
    /// Space-free stable token (journal format).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            WedgeReason::WatchdogAbort => "watchdog",
            WedgeReason::Livelock => "livelock",
            WedgeReason::WallClock => "wall-clock",
        }
    }
}

/// Every way a supervised case can end. Exactly one variant per run — the
/// taxonomy is total, so campaign code never needs a catch-all panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The guest exited.
    Completed {
        /// Its exit code.
        exit_code: i64,
    },
    /// The instruction fuel ran out with no sign of an accelerator wedge.
    FuelExhausted {
        /// The fuel that was granted.
        fuel: u64,
    },
    /// The guest mapped more pages than the budget allows.
    MemCapExceeded {
        /// Pages mapped when the cap tripped.
        pages: usize,
        /// The cap.
        cap: usize,
    },
    /// The guest died on an architectural fault it did not handle.
    Trapped {
        /// The fault.
        error: CpuError,
    },
    /// The case is wedged (see [`WedgeReason`]).
    Wedged {
        /// Why.
        reason: WedgeReason,
    },
}

impl RunOutcome {
    /// True for outcomes worth retrying: wedges that might be transient
    /// interactions rather than deterministic consequences of the case.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RunOutcome::Wedged {
                reason: WedgeReason::Livelock | WedgeReason::WallClock
            }
        )
    }

    /// Space-free stable token for journal records.
    #[must_use]
    pub fn token(&self) -> String {
        match self {
            RunOutcome::Completed { exit_code } => format!("completed:{exit_code}"),
            RunOutcome::FuelExhausted { fuel } => format!("fuel-exhausted:{fuel}"),
            RunOutcome::MemCapExceeded { pages, cap } => format!("mem-cap:{pages}/{cap}"),
            RunOutcome::Trapped { error } => format!("fault:{}", error_token(error)),
            RunOutcome::Wedged { reason } => format!("wedged:{}", reason.token()),
        }
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Completed { exit_code } => write!(f, "completed with exit code {exit_code}"),
            RunOutcome::FuelExhausted { fuel } => {
                write!(f, "exhausted its fuel of {fuel} instructions")
            }
            RunOutcome::MemCapExceeded { pages, cap } => {
                write!(f, "mapped {pages} pages, over the cap of {cap}")
            }
            RunOutcome::Trapped { error } => write!(f, "died on an unhandled fault: {error}"),
            RunOutcome::Wedged { reason } => match reason {
                WedgeReason::WatchdogAbort => write!(f, "wedged (watchdog abort, no trap vector)"),
                WedgeReason::Livelock => write!(f, "wedged (livelocked on a hung accelerator)"),
                WedgeReason::WallClock => write!(f, "wedged (wall-clock budget expired)"),
            },
        }
    }
}

/// Compact space-free rendering of a [`CpuError`] for outcome tokens.
#[must_use]
fn error_token(error: &CpuError) -> String {
    match *error {
        CpuError::UnmappedAddress(a) => format!("unmapped@{a:#x}"),
        CpuError::FetchFault(a) => format!("fetch@{a:#x}"),
        CpuError::MisalignedPc(a) => format!("misaligned-pc@{a:#x}"),
        CpuError::Decode(_) => "decode".to_string(),
        CpuError::UnknownSyscall(n) => format!("syscall:{n}"),
        CpuError::Breakpoint(a) => format!("breakpoint@{a:#x}"),
        CpuError::ReadOnlyCsr(c) => format!("readonly-csr:{c:#x}"),
        CpuError::NoCoprocessor { funct7 } => format!("no-coproc:{funct7}"),
        CpuError::UnknownRoccFunction { funct7 } => format!("unknown-rocc:{funct7}"),
        CpuError::RoccProtocol(_) => "rocc-protocol".to_string(),
        CpuError::MissingRoccResponse { funct7 } => format!("missing-rocc-resp:{funct7}"),
        CpuError::RoccTimeout { funct7, .. } => format!("rocc-timeout:{funct7}"),
        CpuError::InstructionLimit(n) => format!("instruction-limit:{n}"),
        _ => "other".to_string(),
    }
}

/// Steps `cpu` under `budget` until it exits, faults, wedges, or runs out
/// of a budget, and classifies the ending. Never panics, never loops
/// forever: every path out is a [`RunOutcome`].
pub fn run_case(cpu: &mut Cpu, budget: &CaseBudget) -> RunOutcome {
    let started = budget.wall_clock.map(|_| Instant::now());
    for executed in 0..budget.instruction_fuel {
        match cpu.step() {
            Ok(Event::Exited { code }) => return RunOutcome::Completed { exit_code: code },
            Ok(_) => {}
            Err(CpuError::RoccTimeout { .. }) => {
                return RunOutcome::Wedged {
                    reason: WedgeReason::WatchdogAbort,
                }
            }
            Err(error) => return RunOutcome::Trapped { error },
        }
        if let Some(cap) = budget.memory_pages {
            let pages = cpu.memory.mapped_pages();
            if pages > cap {
                return RunOutcome::MemCapExceeded { pages, cap };
            }
        }
        if executed % WALL_CLOCK_POLL == WALL_CLOCK_POLL - 1 {
            if let (Some(limit), Some(start)) = (budget.wall_clock, started) {
                if start.elapsed() > limit {
                    return RunOutcome::Wedged {
                        reason: WedgeReason::WallClock,
                    };
                }
            }
        }
    }
    // Fuel is gone. If the trap log shows the watchdog fired, the guest
    // was spinning on a permanently wedged accelerator (each retry gets a
    // benign response from the sticky Error state, so it never converges);
    // that is a wedge, not an honest long computation.
    if cpu.trap_log.iter().any(|t| t.cause == cause::ROCC_TIMEOUT) {
        RunOutcome::Wedged {
            reason: WedgeReason::Livelock,
        }
    } else {
        RunOutcome::FuelExhausted {
            fuel: budget.instruction_fuel,
        }
    }
}

/// Retry policy for [`supervise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first run included). At least 1.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on each further retry. Zero
    /// disables sleeping (tests).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

/// A supervised case's final outcome and how many attempts it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisedRun {
    /// The last attempt's outcome.
    pub outcome: RunOutcome,
    /// Attempts consumed (1 when the first run was conclusive).
    pub attempts: u32,
}

/// Runs `attempt` up to `policy.max_attempts` times, retrying only
/// [retryable](RunOutcome::is_retryable) outcomes with doubling backoff.
/// The closure builds and runs a fresh case per call, so a wedge caused by
/// stale state cannot leak into the retry.
pub fn supervise<F>(policy: &RetryPolicy, mut attempt: F) -> SupervisedRun
where
    F: FnMut() -> RunOutcome,
{
    let max_attempts = policy.max_attempts.max(1);
    let mut backoff = policy.backoff;
    let mut outcome = attempt();
    let mut attempts = 1;
    while outcome.is_retryable() && attempts < max_attempts {
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
            backoff *= 2;
        }
        outcome = attempt();
        attempts += 1;
    }
    SupervisedRun { outcome, attempts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::load_program;
    use riscv_asm::assemble;

    fn run_source(source: &str, budget: &CaseBudget) -> RunOutcome {
        let program = assemble(source).unwrap();
        let mut cpu = Cpu::new();
        load_program(&mut cpu, &program);
        run_case(&mut cpu, budget)
    }

    #[test]
    fn clean_exit_is_completed() {
        let outcome = run_source(
            "start:\n    li a0, 7\n    li a7, 93\n    ecall\n",
            &CaseBudget::default(),
        );
        assert_eq!(outcome, RunOutcome::Completed { exit_code: 7 });
        assert_eq!(outcome.token(), "completed:7");
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let outcome = run_source(
            "start:\n    j start\n",
            &CaseBudget {
                instruction_fuel: 500,
                ..CaseBudget::default()
            },
        );
        assert_eq!(outcome, RunOutcome::FuelExhausted { fuel: 500 });
        assert!(!outcome.is_retryable());
    }

    #[test]
    fn unhandled_fault_is_trapped() {
        let outcome = run_source(
            "start:\n    li t0, 0x666000\n    ld a0, 0(t0)\n",
            &CaseBudget::default(),
        );
        assert_eq!(
            outcome,
            RunOutcome::Trapped {
                error: CpuError::UnmappedAddress(0x66_6000)
            }
        );
        assert_eq!(outcome.token(), "fault:unmapped@0x666000");
    }

    #[test]
    fn page_cap_stops_a_memory_hog() {
        // Store to a fresh page each iteration, forever.
        let outcome = run_source(
            "
            start:
                li t0, 0x100000
            loop:
                sd zero, 0(t0)
                li t1, 4096
                add t0, t0, t1
                j loop
            ",
            &CaseBudget {
                memory_pages: Some(16),
                ..CaseBudget::default()
            },
        );
        match outcome {
            RunOutcome::MemCapExceeded { pages, cap: 16 } => assert!(pages > 16),
            other => panic!("expected mem-cap outcome, got {other:?}"),
        }
    }

    #[test]
    fn supervise_retries_only_retryable_outcomes() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        };
        // A conclusive outcome: one attempt.
        let run = supervise(&policy, || RunOutcome::Completed { exit_code: 0 });
        assert_eq!(run.attempts, 1);
        // A persistent livelock: all attempts burned, still wedged.
        let mut calls = 0;
        let run = supervise(&policy, || {
            calls += 1;
            RunOutcome::Wedged {
                reason: WedgeReason::Livelock,
            }
        });
        assert_eq!((run.attempts, calls), (3, 3));
        assert!(run.outcome.is_retryable());
        // A transient wedge that clears on the second attempt.
        let mut calls = 0;
        let run = supervise(&policy, || {
            calls += 1;
            if calls == 1 {
                RunOutcome::Wedged {
                    reason: WedgeReason::WallClock,
                }
            } else {
                RunOutcome::Completed { exit_code: 0 }
            }
        });
        assert_eq!(run.attempts, 2);
        assert_eq!(run.outcome, RunOutcome::Completed { exit_code: 0 });
    }

    #[test]
    fn outcome_tokens_are_space_free() {
        let outcomes = [
            RunOutcome::Completed { exit_code: -1 },
            RunOutcome::FuelExhausted { fuel: 10 },
            RunOutcome::MemCapExceeded { pages: 20, cap: 16 },
            RunOutcome::Trapped {
                error: CpuError::RoccProtocol("x"),
            },
            RunOutcome::Wedged {
                reason: WedgeReason::WatchdogAbort,
            },
        ];
        for outcome in outcomes {
            assert!(!outcome.token().contains(' '), "{}", outcome.token());
        }
    }
}
